"""Pipelined cross-shard sweeps over a :class:`ShardedTemporalGraph`.

The causal step of every kernel sweep is a *prefix* operation over
snapshots: influence crosses a time-shard boundary only forward (or, for
backward searches, only backward), and the complete cross-boundary state of
a sweep is one packed block per root column — which node identities the
earlier shards reached, at what minimal level.  That is what makes the
monolithic fused sweeps of :class:`~repro.engine.frontier.FrontierKernel`
and :class:`~repro.engine.labels.LabelKernel` shardable *bit-identically*:

* shard ``i`` runs the exact fused sweep loop over its own ``(T_i, R, W)``
  words, with one addition — at round ``m + 1`` the external nodes whose
  minimal earlier-shard level is ``m`` are injected into the causal carry
  (BFS), the zero-cost saturation (``causal_cost=0`` label sweeps) or the
  unit expansion (``causal_cost=1``), which is precisely when and how the
  monolithic sweep's carry would have delivered them;
* injecting each node once, at its *minimal* level, is exact: a causal
  carry reaches every later snapshot of the node in one step, so the first
  injection visits every slot a later appearance could, and the monolithic
  sweep's visited masking makes the later firings no-ops;
* the shard hands downstream a :class:`BoundaryBlock` — the element-wise
  minimum of its own per-node levels with the incoming block — and the
  Tang sweep, whose state is time-free, hands its raw ``(R, W)`` informed
  words.

:class:`ShardedSweepDriver` schedules those shard sweeps three ways:

* ``backend="serial"`` — shard-major in one process: every root-chunk's
  sweep visits shard 0, then every sweep visits shard 1, …  With a
  store-backed graph each shard is :meth:`released
  <repro.graph.sharded.ShardedTemporalGraph.release>` before the next is
  opened, so peak operator residency is one shard — the out-of-core path;
* ``backend="thread"`` — root-chunks flow through the shard chain
  concurrently (chunk ``c`` sweeps shard 2 while chunk ``c+1`` sweeps
  shard 0): software pipelining over root-batches, sharing the in-process
  shard artifacts;
* ``backend="process"`` — persistent workers each *own* a subset of shards
  permanently (the picklable compiled artifacts ship once, at startup);
  thereafter only task tuples and packed ``(R, W)`` boundary blocks cross
  process boundaries.  Shards are assigned to workers by
  :func:`~repro.parallel.partition.chunk_by_weight` over shard nnz.

Every public method mirrors its monolithic kernel twin — same arguments,
same decoded shapes, bit-identical results (``tests/test_sharded.py``
hypothesis-asserts this across families, shard counts and backends).  Even
the float harmonic sums are exact: shards ship per-snapshot partial rows
and the driver folds them in canonical global snapshot order, replaying
the monolithic reduction addition-for-addition.  Obtain a cached driver
via :func:`repro.engine.get_sharded_driver`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.bfs import BFSResult
from repro.engine import bitops
from repro.engine.frontier import (
    FrontierKernel,
    _harmonic_accumulate,
    _harmonic_rows,
)
from repro.exceptions import GraphError, InactiveNodeError
from repro.graph.base import Node, TemporalNodeTuple, Time
from repro.graph.sharded import ShardedTemporalGraph

__all__ = ["BoundaryBlock", "ShardedSweepDriver", "SHARD_BACKENDS"]

SHARD_BACKENDS = ("serial", "thread", "process")

#: Sentinel level for nodes no earlier shard has reached (same headroom
#: contract as the frontier kernel's ``_UNREACHED``: never wins a minimum,
#: ``_FAR + 1`` cannot overflow int32).
_FAR = np.int32(2**30)


# --------------------------------------------------------------------------- #
# the boundary block                                                          #
# --------------------------------------------------------------------------- #


class BoundaryBlock:
    """The complete cross-shard state of a BFS/label sweep, packed.

    For each root column and node identity: the minimal level (distance or
    label) at which any earlier shard reached that node, stored as one
    ``(R, W)`` uint64 bit plane per distinct level.  This is the only thing
    that crosses a shard boundary — and, under the process backend, the only
    payload besides task tuples that crosses a *process* boundary.

    Instances are immutable and picklable; :meth:`merged_with` produces the
    outgoing block from the incoming one plus a shard's own levels.
    """

    __slots__ = ("num_columns", "num_bits", "levels")

    def __init__(
        self, num_columns: int, num_bits: int, levels: dict[int, np.ndarray]
    ) -> None:
        self.num_columns = int(num_columns)
        self.num_bits = int(num_bits)
        self.levels = levels

    @classmethod
    def empty(cls, num_columns: int, num_bits: int) -> "BoundaryBlock":
        """The boundary entering the first shard of a chain: nothing reached."""
        return cls(num_columns, num_bits, {})

    @classmethod
    def from_min_levels(cls, min_levels: np.ndarray) -> "BoundaryBlock":
        """Encode an ``(R, N)`` int32 array of minimal levels (``_FAR`` = none)."""
        r, n = min_levels.shape
        levels: dict[int, np.ndarray] = {}
        for level in np.unique(min_levels[min_levels < _FAR]).tolist():
            levels[int(level)] = bitops.pack_bits(min_levels == level)
        return cls(r, n, levels)

    def words(self, level: int) -> np.ndarray | None:
        """The packed ``(R, W)`` words of nodes at exactly ``level``, if any."""
        return self.levels.get(level)

    @property
    def max_level(self) -> int:
        """The largest stored level; ``-1`` when the block is empty."""
        return max(self.levels) if self.levels else -1

    def decode(self) -> np.ndarray:
        """Back to the dense ``(R, N)`` int32 min-level array (``_FAR`` = none)."""
        out = np.full((self.num_columns, self.num_bits), _FAR, dtype=np.int32)
        for level in sorted(self.levels, reverse=True):
            out[bitops.unpack_bits(self.levels[level], self.num_bits)] = level
        return out

    def merged_with(self, shard_min_levels: np.ndarray) -> "BoundaryBlock":
        """The outgoing boundary: element-wise min with a shard's own levels."""
        if not self.levels:
            return self.from_min_levels(shard_min_levels.astype(np.int32))
        return self.from_min_levels(np.minimum(self.decode(), shard_min_levels))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoundaryBlock):
            return NotImplemented
        return (
            self.num_columns == other.num_columns
            and self.num_bits == other.num_bits
            and set(self.levels) == set(other.levels)
            and all(
                np.array_equal(words, other.levels[level])
                for level, words in self.levels.items()
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BoundaryBlock columns={self.num_columns} bits={self.num_bits} "
            f"levels={sorted(self.levels)}>"
        )


# --------------------------------------------------------------------------- #
# per-shard sweeps (module-level and picklable: every backend runs these)     #
# --------------------------------------------------------------------------- #


def _bfs_shard_sweep(
    kernel: FrontierKernel,
    seeds_per_column: Sequence[Sequence[tuple[int, int]]],
    boundary: BoundaryBlock,
    *,
    forward: bool,
    reverse_edges: bool,
) -> tuple[np.ndarray, BoundaryBlock]:
    """One shard's slice of a fused BFS sweep; ``((T_i, N, R) dist, boundary out)``.

    This is ``FrontierKernel._run_fused`` verbatim over the shard's own
    snapshots, plus the boundary injection: at the round assigning distance
    ``m + 1``, the external nodes at minimal earlier-shard distance ``m``
    seed the causal carry — exactly the words the monolithic carry would
    hold when entering this shard's snapshot range at that level.
    """
    compiled = kernel.compiled
    active_mask = compiled.active_mask
    t_count, n = active_mask.shape
    r = boundary.num_columns
    w = bitops.words_for(n)
    dist = np.full((t_count, r, n), -1, dtype=np.int32)
    frontier = np.zeros((t_count, r, w), dtype=np.uint64)
    for col, seeds in enumerate(seeds_per_column):
        for ti, vi in seeds:
            frontier[ti, col, vi >> 6] |= np.uint64(1 << (vi & 63))
            dist[ti, col, vi] = 0
    visited = frontier.copy()
    use_forward_ops = forward != reverse_edges
    mats = (
        compiled.forward_operators if use_forward_ops else compiled.backward_operators
    )
    degrees = kernel._operator_degrees(use_forward_ops)
    active_words = kernel._packed_active()
    counter = kernel.counter
    order = list(range(t_count)) if forward else list(range(t_count - 1, -1, -1))
    scratch = np.zeros_like(frontier)
    max_ext = boundary.max_level
    level = 0
    alive = bool(frontier.any())
    # rounds keep running past frontier death while later boundary levels can
    # still revive the shard (an empty round is a handful of word probes)
    while alive or level <= max_ext:
        level += 1
        alive = False
        ext = boundary.words(level - 1)
        carry = (
            ext.copy() if ext is not None else np.zeros((r, w), dtype=np.uint64)
        )
        for ti in order:
            f_t = frontier[ti]
            new_t = scratch[ti]
            f_any = bool(f_t.any())
            if not f_any and not carry.any():
                new_t[:] = 0
                continue
            remaining = active_words[ti] & ~visited[ti]
            if counter is not None:
                counter.word_ops += 2 * new_t.size
            if not remaining.any():
                new_t[:] = 0
                if f_any:
                    carry |= f_t
                continue
            if f_any and mats[ti].nnz:
                spatial = bitops.advance_blocked(
                    mats[ti],
                    f_t,
                    n,
                    out_degrees=degrees[ti],
                    active_row=active_words[ti],
                    visited_words=visited[ti],
                    counter=counter,
                )
            else:
                spatial = np.zeros((r, w), dtype=np.uint64)
            bitops.fused_update(
                spatial, carry, active_words[ti], visited[ti], f_t, new_t
            )
            if counter is not None:
                counter.word_ops += bitops.FUSED_UPDATE_WORD_OPS * new_t.size
            if new_t.any():
                alive = True
                mask = bitops.unpack_bits(new_t, n)
                dist[ti] += np.multiply(mask, level + 1, dtype=np.int32)
        frontier, scratch = scratch, frontier
    shard_min = np.where(dist >= 0, dist, _FAR).min(axis=0)  # (R, N)
    return dist.transpose(0, 2, 1), boundary.merged_with(shard_min)


def _zero_one_shard_sweep(
    kernel: FrontierKernel,
    seeds_per_column: Sequence[Sequence[tuple[int, int]]],
    boundary: BoundaryBlock,
    spatial_cost: int,
    causal_cost: int,
) -> tuple[np.ndarray, BoundaryBlock]:
    """One shard's slice of the 0/1-semiring sweep; ``((T_i, N, R), boundary out)``.

    ``LabelKernel._zero_one_run_fused`` over the shard's snapshots, with the
    boundary injected where the monolithic causal step would deliver it:
    external nodes at minimal label ``m`` join the cost-``m`` zero-cost
    saturation when causal edges are free, or the cost-``m`` unit expansion
    (producing ``m + 1``) when causal edges cost one.
    """
    compiled = kernel.compiled
    t_count, n = compiled.active_mask.shape
    r = boundary.num_columns
    w = bitops.words_for(n)
    mats = compiled.forward_operators
    degrees = kernel._operator_degrees(True)
    active_words = kernel._packed_active()
    labels = np.full((t_count, n, r), -1, dtype=np.int32)
    frontier = np.zeros((t_count, r, w), dtype=np.uint64)
    for col, seeds in enumerate(seeds_per_column):
        for ti, vi in seeds:
            frontier[ti, col, vi >> 6] |= np.uint64(1) << np.uint64(vi & 63)
            labels[ti, vi, col] = 0
    reached = frontier.copy()

    def spatial_step(block: np.ndarray) -> np.ndarray:
        out = np.zeros_like(block)
        for ti in range(t_count):
            if mats[ti].nnz and block[ti].any():
                out[ti] = bitops.advance_blocked(
                    mats[ti],
                    block[ti],
                    n,
                    out_degrees=degrees[ti],
                    active_row=active_words[ti],
                    visited_words=reached[ti],
                )
        return out

    max_ext = boundary.max_level
    cost = 0
    while frontier.any() or cost <= max_ext:
        ext = boundary.words(cost)
        # an external node is strictly earlier than every snapshot here, so
        # its causal reach is the node's bit at all of them, active-masked
        ext_block = (
            ext[None, :, :] & active_words[:, None, :] if ext is not None else None
        )
        # saturate zero-cost edge families at the current cost level
        while True:
            grow = np.zeros_like(frontier)
            if causal_cost == 0:
                grow |= bitops.causal_or_accumulate(frontier, active_words)
                if ext_block is not None:
                    grow |= ext_block
            if spatial_cost == 0:
                grow |= spatial_step(frontier)
            grow &= active_words[:, None, :]
            grow &= ~reached
            if not grow.any():
                break
            mask = bitops.unpack_bits(grow, n)
            labels[mask.transpose(0, 2, 1)] = cost
            reached |= grow
            frontier |= grow
        # one unit-cost expansion
        step = np.zeros_like(frontier)
        if spatial_cost == 1:
            step |= spatial_step(frontier)
        if causal_cost == 1:
            step |= bitops.causal_or_accumulate(frontier, active_words)
            if ext_block is not None:
                step |= ext_block
        frontier = step & active_words[:, None, :] & ~reached
        cost += 1
        mask = bitops.unpack_bits(frontier, n)
        labels[mask.transpose(0, 2, 1)] = cost
        reached |= frontier
    shard_min = np.where(labels >= 0, labels, _FAR).min(axis=0).T  # (R, N)
    return labels, boundary.merged_with(shard_min)


def _tang_shard_sweep(
    kernel: FrontierKernel,
    informed: np.ndarray,
    *,
    horizon: int,
    start_index: int,
    global_start: int,
) -> tuple[np.ndarray, np.ndarray]:
    """One shard's slice of the Tang sweep; ``((N, R) step partial, informed out)``.

    The Tang state is time-free — the ``(R, W)`` informed words *are* the
    boundary — so this is ``LabelKernel._tang_chunk_fused`` restricted to
    the shard's snapshots, with global step numbering
    (``global snapshot - start_index + 1``) and the incoming words carried
    forward.  Nodes informed before this shard are never "fresh" here, so
    the per-shard step partials are disjoint.
    """
    compiled = kernel.compiled
    mats = compiled.forward_operators
    t_count = compiled.num_snapshots
    n = compiled.num_nodes
    r = informed.shape[0]
    degrees = kernel._operator_degrees(True)
    informed = informed.copy()
    steps = np.full((n, r), -1, dtype=np.int32)
    if bitops.popcount(informed) == n * r:
        return steps, informed
    local_start = max(0, start_index - global_start)
    for ti in range(local_start, t_count):
        if not mats[ti].nnz:
            continue
        step = global_start + ti - start_index + 1
        fresh = np.zeros((r, bitops.words_for(n)), dtype=np.uint64)
        for _ in range(max(1, horizon)):
            spread = bitops.advance_blocked(
                mats[ti],
                informed,
                n,
                out_degrees=degrees[ti],
                visited_words=informed,
                counter=kernel.counter,
            )
            newly = spread & ~informed
            if not newly.any():
                break
            informed |= newly
            fresh |= newly
        if fresh.any():
            steps.T[bitops.unpack_bits(fresh, n)] = step
        if bitops.popcount(informed) == n * r:
            break
    return steps, informed


def _run_shard_task(
    kernel: FrontierKernel,
    spec: tuple,
    kind: str,
    seeds: Sequence[Sequence[tuple[int, int]]],
    boundary,
    global_start: int,
) -> tuple[object, object]:
    """Execute one (shard, chunk) sweep and reduce its block to a partial.

    ``spec`` is a picklable family tuple — ``("bfs", forward, reverse_edges)``,
    ``("zero_one", spatial_cost, causal_cost)`` or ``("tang", horizon,
    start_index)`` — and ``kind`` picks the partial shipped back to the
    driver, so the process backend returns reductions (reach masks, harmonic
    sums, hit indices, decoded dictionaries) instead of full blocks whenever
    the readout allows.
    """
    family = spec[0]
    if family == "tang":
        return _tang_shard_sweep(
            kernel,
            boundary,
            horizon=spec[1],
            start_index=spec[2],
            global_start=global_start,
        )
    if family == "bfs":
        block, boundary_out = _bfs_shard_sweep(
            kernel, seeds, boundary, forward=spec[1], reverse_edges=spec[2]
        )
    else:
        block, boundary_out = _zero_one_shard_sweep(
            kernel, seeds, boundary, spec[1], spec[2]
        )
    return _reduce_block(kernel, kind, block, global_start), boundary_out


def _reduce_block(
    kernel: FrontierKernel, kind: str, block: np.ndarray, global_start: int
) -> object:
    """Collapse a shard's ``(T_i, N, R)`` block to the partial a readout needs."""
    if kind == "block":
        return block
    if kind == "reach":
        return (block >= 0).any(axis=0)  # (N, R) identity-hit mask
    if kind == "harmonic":
        # per-snapshot (T_i, R) rows via the monolithic kernel's canonical
        # reduction; the driver folds them in global snapshot order, so the
        # float sums are bit-identical to the monolithic readout
        return _harmonic_rows(block)
    if kind in ("first", "last"):
        reached = block >= 0
        hit = reached.any(axis=0)
        if kind == "first":
            local = reached.argmax(axis=0)
        else:
            local = block.shape[0] - 1 - reached[::-1].argmax(axis=0)
        return np.where(hit, np.int32(global_start) + local, -1).astype(np.int32)
    if kind == "reached":
        # decoded per-column dictionaries: the shard owns the full node
        # universe and its own slice of real time labels, so local decoding
        # is globally correct (and what keeps process results small)
        return [kernel._reached_dict(block, col) for col in range(block.shape[2])]
    raise GraphError(f"unknown shard partial kind {kind!r}")


def _merge_partials(kind: str, parts: Sequence) -> object:
    """Combine per-shard partials (ascending shard index) into the global one."""
    if kind == "block":
        return np.concatenate(parts, axis=0)
    if kind == "reach":
        merged = parts[0].copy()
        for part in parts[1:]:
            merged |= part
        return merged
    if kind == "harmonic":
        # concatenating ascending-shard partials restores global snapshot
        # order; the sequential fold then performs the exact same float
        # additions, in the exact same order, as the monolithic kernel —
        # run it even for a single part so one-shard layouts match too
        return _harmonic_accumulate(np.concatenate(parts, axis=0))
    if kind in ("first", "last"):
        merged = parts[0].copy()
        combine = np.minimum if kind == "first" else np.maximum
        for part in parts[1:]:
            merged = np.where(
                merged < 0, part, np.where(part < 0, merged, combine(merged, part))
            )
        return merged
    if kind == "reached":
        merged = [dict(d) for d in parts[0]]
        for part in parts[1:]:
            for col, d in enumerate(part):
                merged[col].update(d)
        return merged
    if kind == "steps":
        merged = parts[0].copy()
        for part in parts[1:]:
            merged = np.where(merged < 0, part, merged)
        return merged
    raise GraphError(f"unknown shard partial kind {kind!r}")


def _pipeline_worker(payload, in_q, out_q):  # pragma: no cover - subprocess body
    """Process-backend worker loop: owns its shards for the driver's lifetime.

    ``payload`` is ``[(shard index, compiled artifact, global start), ...]``
    shipped once, at startup, through the PR-3 pickling path; thereafter the
    input queue carries only task tuples with packed boundary state, and the
    output queue only ``(chunk, shard, partial, boundary out)`` results.
    """
    kernels = {}
    starts = {}
    for shard_index, artifact, global_start in payload:
        kernels[shard_index] = FrontierKernel(artifact)
        starts[shard_index] = global_start
    while True:
        message = in_q.get()
        if message is None:
            break
        chunk_id, shard_index, spec, kind, seeds, boundary = message
        try:
            partial, boundary_out = _run_shard_task(
                kernels[shard_index], spec, kind, seeds, boundary, starts[shard_index]
            )
            out_q.put((chunk_id, shard_index, partial, boundary_out, None))
        except Exception as exc:  # noqa: BLE001 - relayed to the driver
            out_q.put((chunk_id, shard_index, None, None, repr(exc)))


# --------------------------------------------------------------------------- #
# the driver                                                                  #
# --------------------------------------------------------------------------- #


class ShardedSweepDriver:
    """Runs every kernel sweep family across the shards of one artifact.

    Parameters
    ----------
    sharded:
        The :class:`~repro.graph.sharded.ShardedTemporalGraph` to sweep.
    backend:
        ``"serial"`` (shard-major, store-release between shards — the
        out-of-core path), ``"thread"`` (root-chunks pipeline through the
        shard chain on a thread pool) or ``"process"`` (persistent workers
        own shards; only packed boundaries cross process boundaries).
    num_workers:
        Worker count for the thread/process backends (default: the shard
        count, capped at 4 for processes).
    chunk_size:
        Default root-batch width per sweep, as in the monolithic kernels.

    The driver mirrors the monolithic kernel surface method-for-method and
    is itself what :func:`repro.engine.get_sharded_driver` caches under
    ``(mutation_version, shard layout, backend, num_workers)``.  Process
    backends hold OS resources: :meth:`close` them (context-manager
    supported); the dispatch cache closes evicted drivers.
    """

    def __init__(
        self,
        sharded: ShardedTemporalGraph,
        *,
        backend: str = "serial",
        num_workers: int | None = None,
        chunk_size: int = 128,
        mp_context: str | None = None,
    ) -> None:
        if backend not in SHARD_BACKENDS:
            raise GraphError(
                f"unsupported shard backend {backend!r}; "
                f"expected one of {SHARD_BACKENDS}"
            )
        if chunk_size < 1:
            raise GraphError("chunk_size must be at least 1")
        self.sharded = sharded
        self.backend = backend
        self.chunk_size = int(chunk_size)
        if num_workers is None:
            num_workers = (
                sharded.num_shards
                if backend == "process"
                else min(sharded.num_shards, 4)
            )
        self.num_workers = max(1, int(num_workers))
        self._mp_context = mp_context
        self._labels = sharded.node_labels
        self._node_index = sharded.node_index
        self._times = sharded.times
        self._kernels: dict[int, FrontierKernel] = {}
        self._processes: list = []
        self._task_queues: dict[int, object] = {}
        self._result_queue = None
        self._owner: dict[int, int] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # metadata surface (what serving and the algorithms layer read)       #
    # ------------------------------------------------------------------ #

    @property
    def node_labels(self) -> list[Node]:
        return list(self._labels)

    @property
    def times(self) -> tuple[Time, ...]:
        return tuple(self._times)

    @property
    def num_nodes(self) -> int:
        return self.sharded.num_nodes

    @property
    def num_snapshots(self) -> int:
        return self.sharded.num_snapshots

    @property
    def num_shards(self) -> int:
        return self.sharded.num_shards

    @property
    def mutation_version(self) -> int:
        return self.sharded.mutation_version

    def is_active(self, node: Node, time: Time) -> bool:
        return self.sharded.is_active(node, time)

    def require_current(self, graph) -> None:
        """Raise :class:`GraphError` when the artifact no longer matches ``graph``."""
        if not self.sharded.is_current(graph):
            raise GraphError(
                "sharded artifact is stale for this graph (artifact version "
                f"{self.sharded.mutation_version}, graph version "
                f"{graph.mutation_version}); rebuild via get_sharded_driver"
            )

    # ------------------------------------------------------------------ #
    # seeds and scheduling                                                #
    # ------------------------------------------------------------------ #

    def _seed_index(self, root: TemporalNodeTuple) -> tuple[int, int]:
        node, time = root
        slot = self.sharded.slot(node, time)
        if slot is None or not self.sharded.active_mask[slot]:
            raise InactiveNodeError(node, time)
        return slot

    def _kernel(self, shard_index: int) -> FrontierKernel:
        kernel = self._kernels.get(shard_index)
        if kernel is None:
            kernel = FrontierKernel(self.sharded.shard(shard_index))
            self._kernels[shard_index] = kernel
        return kernel

    def adopt_kernels(self, previous: "ShardedSweepDriver") -> int:
        """Carry over per-shard kernels whose shard artifact is unchanged.

        After a delta re-shard (:meth:`ShardedTemporalGraph.recompile
        <repro.graph.sharded.ShardedTemporalGraph.recompile>`) every clean
        shard is the *same object* as in the previous artifact, so the old
        driver's lazily-warmed :class:`FrontierKernel` for it — packed
        activeness words, operator degrees — stays exact and is reused
        verbatim.  Returns the number of kernels adopted.  (Serial/thread
        backends only: process workers own their kernels remotely.)
        """
        adopted = 0
        for index, kernel in previous._kernels.items():
            if (
                index < self.sharded.num_shards
                and self.sharded.materialized(index)
                and kernel.compiled is self.sharded.shard(index)
                and index not in self._kernels
            ):
                self._kernels[index] = kernel
                adopted += 1
        return adopted

    def _chain(self, spec: tuple) -> list[int]:
        """Shard processing order for a sweep family (the pipeline order)."""
        count = self.sharded.num_shards
        if spec[0] == "bfs" and not spec[1]:
            return list(range(count - 1, -1, -1))
        if spec[0] == "tang":
            start_index = spec[2]
            return [
                i
                for i, (_, stop) in enumerate(self.sharded.boundaries)
                if stop > start_index
            ]
        return list(range(count))

    def _split_seeds(
        self, seeds_per_column: Sequence[Sequence[tuple[int, int]]]
    ) -> list[list[list[tuple[int, int]]]]:
        """Global seed slots, rebased to per-shard local snapshot indices."""
        out = []
        for start, stop in self.sharded.boundaries:
            out.append(
                [
                    [(ti - start, vi) for ti, vi in seeds if start <= ti < stop]
                    for seeds in seeds_per_column
                ]
            )
        return out

    def _run_chunks(
        self, spec: tuple, kind: str, plans: Sequence[tuple]
    ) -> list:
        """Run every chunk's sweep chain; returns merged partials per chunk.

        ``plans`` holds ``(per-shard seeds, initial boundary)`` per chunk —
        for Tang sweeps the "boundary" is the packed informed words and the
        seeds are unused.
        """
        if self._closed:
            raise GraphError("driver is closed")
        if not plans:
            return []
        chain = self._chain(spec)
        merge_kind = "steps" if spec[0] == "tang" else kind
        if not chain:
            raise GraphError("sweep chain is empty")  # pragma: no cover - guarded
        if self.backend == "process":
            per_chunk = self._run_process(spec, kind, plans, chain)
        elif self.backend == "thread" and len(plans) > 1:
            with ThreadPoolExecutor(max_workers=self.num_workers) as pool:
                per_chunk = list(
                    pool.map(
                        lambda plan: self._run_chain(spec, kind, plan, chain), plans
                    )
                )
        elif self.backend == "serial" and self.sharded.store_backed:
            per_chunk = self._run_serial_shard_major(spec, kind, plans, chain)
        else:
            per_chunk = [self._run_chain(spec, kind, plan, chain) for plan in plans]
        return [_merge_partials(merge_kind, parts) for parts in per_chunk]

    def _run_chain(
        self, spec: tuple, kind: str, plan: tuple, chain: Sequence[int]
    ) -> list:
        """One chunk through the whole shard chain, in-process."""
        seeds_by_shard, boundary = plan
        parts: dict[int, object] = {}
        for shard_index in chain:
            partial, boundary = _run_shard_task(
                self._kernel(shard_index),
                spec,
                kind,
                seeds_by_shard[shard_index] if seeds_by_shard else None,
                boundary,
                self.sharded.boundaries[shard_index][0],
            )
            parts[shard_index] = partial
        return [parts[i] for i in sorted(parts)]

    def _run_serial_shard_major(
        self, spec: tuple, kind: str, plans: Sequence[tuple], chain: Sequence[int]
    ) -> list:
        """Shard-major serial order: open each shard once across all chunks.

        This is the out-of-core schedule — a store-backed shard is released
        (and its kernel dropped) before the next one opens, so peak operator
        residency stays at one shard regardless of chain length.
        """
        count = len(plans)
        parts: list[dict[int, object]] = [{} for _ in range(count)]
        boundaries = [plan[1] for plan in plans]
        for shard_index in chain:
            kernel = self._kernel(shard_index)
            global_start = self.sharded.boundaries[shard_index][0]
            for c, plan in enumerate(plans):
                seeds_by_shard = plan[0]
                parts[c][shard_index], boundaries[c] = _run_shard_task(
                    kernel,
                    spec,
                    kind,
                    seeds_by_shard[shard_index] if seeds_by_shard else None,
                    boundaries[c],
                    global_start,
                )
            self._kernels.pop(shard_index, None)
            self.sharded.release(shard_index)
        return [[chunk_parts[i] for i in sorted(chunk_parts)] for chunk_parts in parts]

    # ------------------------------------------------------------------ #
    # the process pipeline                                                #
    # ------------------------------------------------------------------ #

    def _ensure_processes(self) -> None:
        if self._processes:
            return
        import multiprocessing

        ctx = multiprocessing.get_context(self._mp_context)
        from repro.parallel.partition import chunk_by_weight

        shard_ids = list(range(self.sharded.num_shards))
        weights = [nnz + 1 for nnz in self.sharded.shard_nnz]
        assignment = chunk_by_weight(shard_ids, weights, self.num_workers)
        self._result_queue = ctx.Queue()
        for worker_id, owned in enumerate(assignment):
            payload = [
                (i, self.sharded.shard(i), self.sharded.boundaries[i][0])
                for i in owned
            ]
            task_queue = ctx.Queue()
            process = ctx.Process(
                target=_pipeline_worker,
                args=(payload, task_queue, self._result_queue),
                daemon=True,
            )
            process.start()
            self._processes.append(process)
            for i in owned:
                self._task_queues[i] = task_queue

    def _run_process(
        self, spec: tuple, kind: str, plans: Sequence[tuple], chain: Sequence[int]
    ) -> list:
        """Software-pipelined schedule over the persistent shard owners.

        Every chunk is enqueued at the chain's first shard up front; as each
        ``(chunk, shard)`` result returns, its boundary block is routed to
        the owner of the next shard — so shard ``i`` sweeps chunk ``c + 1``
        while shard ``i + 1`` sweeps chunk ``c`` after the pipeline fills.
        """
        self._ensure_processes()
        next_in_chain = {
            shard: chain[pos + 1] for pos, shard in enumerate(chain[:-1])
        }
        parts: list[dict[int, object]] = [{} for _ in plans]

        def submit(chunk_id: int, shard_index: int, boundary) -> None:
            seeds_by_shard = plans[chunk_id][0]
            self._task_queues[shard_index].put(
                (
                    chunk_id,
                    shard_index,
                    spec,
                    kind,
                    seeds_by_shard[shard_index] if seeds_by_shard else None,
                    boundary,
                )
            )

        for chunk_id, plan in enumerate(plans):
            submit(chunk_id, chain[0], plan[1])
        pending = len(plans) * len(chain)
        while pending:
            chunk_id, shard_index, partial, boundary, error = self._result_queue.get()
            if error is not None:
                self.close()
                raise GraphError(f"shard worker failed: {error}")
            pending -= 1
            parts[chunk_id][shard_index] = partial
            follower = next_in_chain.get(shard_index)
            if follower is not None:
                submit(chunk_id, follower, boundary)
        return [[chunk_parts[i] for i in sorted(chunk_parts)] for chunk_parts in parts]

    def close(self) -> None:
        """Shut down process workers (no-op for serial/thread backends)."""
        self._closed = True
        for task_queue in set(self._task_queues.values()):
            try:
                task_queue.put(None)
            except Exception:  # pragma: no cover - teardown races
                pass
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
        self._processes = []
        self._task_queues = {}
        self._result_queue = None

    def __enter__(self) -> "ShardedSweepDriver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            if self._processes:
                self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # frontier-family sweeps                                              #
    # ------------------------------------------------------------------ #

    def _frontier_chunks(
        self,
        roots: Sequence[TemporalNodeTuple],
        spec: tuple,
        kind: str,
        chunk_size: int | None,
    ) -> Iterator[tuple[list[TemporalNodeTuple], object]]:
        """Chunk roots and pipeline all chunks through the shard chain at once.

        Every chunk's plan is built up front so the thread/process backends
        can overlap chunks at different chain positions (software pipelining
        over root-batches); the merged partials are then yielded chunk by
        chunk in root order, matching the kernels' chunked iterators.
        """
        size = chunk_size or self.chunk_size
        if size < 1:
            raise GraphError("chunk_size must be at least 1")
        n = self.sharded.num_nodes
        chunks: list[list[TemporalNodeTuple]] = []
        plans: list[tuple] = []
        for start in range(0, len(roots), size):
            chunk = list(roots[start : start + size])
            seeds = [[self._seed_index(r)] for r in chunk]
            chunks.append(chunk)
            plans.append(
                (self._split_seeds(seeds), BoundaryBlock.empty(len(chunk), n))
            )
        yield from zip(chunks, self._run_chunks(spec, kind, plans))

    def bfs(
        self,
        root: TemporalNodeTuple,
        *,
        direction: str = "forward",
        reverse_edges: bool = False,
        sweep_mode: str | None = None,
    ) -> BFSResult:
        """Single-source search; equals ``FrontierKernel.bfs`` bit-for-bit.

        ``sweep_mode`` is accepted for kernel-surface compatibility and
        ignored: shard sweeps always run the fused loops (whose results the
        monolithic suites pin to classic).
        """
        root = (root[0], root[1])
        spec = ("bfs", direction == "forward", bool(reverse_edges))
        for _, merged in self._frontier_chunks([root], spec, "reached", 1):
            return BFSResult(root=root, reached=merged[0])
        raise GraphError("empty sweep")  # pragma: no cover - single chunk above

    def multi_source(
        self,
        roots: Iterable[TemporalNodeTuple],
        *,
        direction: str = "forward",
        sweep_mode: str | None = None,
    ) -> BFSResult:
        """One search seeded at several roots, as ``FrontierKernel.multi_source``."""
        root_list = [(r[0], r[1]) for r in roots]
        active_roots = [r for r in root_list if self.is_active(*r)]
        if not active_roots:
            if root_list:
                raise InactiveNodeError(*root_list[0])
            raise ValueError("multi_source requires at least one root")
        seeds = [[self._seed_index(r) for r in active_roots]]
        boundary = BoundaryBlock.empty(1, self.sharded.num_nodes)
        plan = (self._split_seeds(seeds), boundary)
        spec = ("bfs", direction == "forward", False)
        (merged,) = self._run_chunks(spec, "reached", [plan])
        return BFSResult(root=tuple(active_roots), reached=merged[0])

    def batch(
        self,
        roots: Iterable[TemporalNodeTuple],
        *,
        direction: str = "forward",
        chunk_size: int | None = None,
        sweep_mode: str | None = None,
    ) -> dict[TemporalNodeTuple, BFSResult]:
        """Many independent searches, as ``FrontierKernel.batch`` (inactive skipped)."""
        root_list = [(r[0], r[1]) for r in roots]
        active_roots = [r for r in root_list if self.is_active(*r)]
        spec = ("bfs", direction == "forward", False)
        results: dict[TemporalNodeTuple, BFSResult] = {}
        for chunk, merged in self._frontier_chunks(
            active_roots, spec, "reached", chunk_size
        ):
            for col, root in enumerate(chunk):
                results[root] = BFSResult(root=root, reached=merged[col])
        return results

    def distance_blocks(
        self,
        roots: Iterable[TemporalNodeTuple],
        *,
        direction: str = "forward",
        reverse_edges: bool = False,
        chunk_size: int | None = None,
        sweep_mode: str | None = None,
    ) -> Iterator[tuple[list[TemporalNodeTuple], np.ndarray]]:
        """Raw global ``(T, N, R)`` distance blocks, chunked as the kernel's."""
        spec = ("bfs", direction == "forward", bool(reverse_edges))
        root_list = [(r[0], r[1]) for r in roots]
        return self._frontier_chunks(root_list, spec, "block", chunk_size)

    def identity_reach_counts(
        self,
        roots: Iterable[TemporalNodeTuple],
        *,
        direction: str = "forward",
        reverse_edges: bool = False,
        chunk_size: int | None = None,
        sweep_mode: str | None = None,
    ) -> dict[TemporalNodeTuple, int]:
        """Per root: reached node identities minus itself, pipelined per shard.

        Shards ship ``(N, R)`` identity-hit masks; the driver ORs and counts,
        so the result is bit-identical to the monolithic reduction.
        """
        spec = ("bfs", direction == "forward", bool(reverse_edges))
        out: dict[TemporalNodeTuple, int] = {}
        root_list = [(r[0], r[1]) for r in roots]
        for chunk, merged in self._frontier_chunks(
            root_list, spec, "reach", chunk_size
        ):
            counts = merged.sum(axis=0)
            for col, root in enumerate(chunk):
                out[root] = int(counts[col]) - 1
        return out

    def harmonic_closeness_sums(
        self,
        roots: Iterable[TemporalNodeTuple],
        *,
        direction: str = "forward",
        chunk_size: int | None = None,
        sweep_mode: str | None = None,
    ) -> dict[TemporalNodeTuple, float]:
        """Per root: ``sum(1/d)`` over reached slots at distance > 0.

        Each shard reduces its own slice of the (bit-identical) distance
        block to per-snapshot ``(T_i, R)`` rows via the monolithic kernel's
        canonical reduction; the driver concatenates them back into global
        snapshot order and folds sequentially, so the float sums are
        *bit-identical* to the monolithic kernel — not merely close.
        """
        spec = ("bfs", direction == "forward", False)
        out: dict[TemporalNodeTuple, float] = {}
        root_list = [(r[0], r[1]) for r in roots]
        for chunk, merged in self._frontier_chunks(
            root_list, spec, "harmonic", chunk_size
        ):
            for col, root in enumerate(chunk):
                out[root] = float(merged[col])
        return out

    # ------------------------------------------------------------------ #
    # label-family sweeps                                                 #
    # ------------------------------------------------------------------ #

    def earliest_arrivals(
        self,
        roots: Iterable[TemporalNodeTuple],
        *,
        chunk_size: int | None = None,
        sweep_mode: str | None = None,
    ) -> dict[TemporalNodeTuple, dict[Node, Time]]:
        """Per root: earliest reachable time per node identity (forward sweep).

        Shards ship ``(N, R)`` global first-hit snapshot indices; the driver
        keeps the minimum, which equals the monolithic running-minimum
        readout exactly.
        """
        spec = ("bfs", True, False)
        out: dict[TemporalNodeTuple, dict[Node, Time]] = {}
        root_list = [(r[0], r[1]) for r in roots]
        for chunk, first in self._frontier_chunks(
            root_list, spec, "first", chunk_size
        ):
            for col, root in enumerate(chunk):
                hits = np.nonzero(first[:, col] >= 0)[0]
                out[root] = {
                    self._labels[vi]: self._times[first[vi, col]]
                    for vi in hits.tolist()
                }
        return out

    def latest_departures(
        self,
        targets: Iterable[TemporalNodeTuple],
        *,
        chunk_size: int | None = None,
        sweep_mode: str | None = None,
    ) -> dict[TemporalNodeTuple, dict[Node, Time]]:
        """Per target: latest departing time per node identity (backward sweep)."""
        spec = ("bfs", False, False)
        out: dict[TemporalNodeTuple, dict[Node, Time]] = {}
        target_list = [(r[0], r[1]) for r in targets]
        for chunk, last in self._frontier_chunks(
            target_list, spec, "last", chunk_size
        ):
            for col, target in enumerate(chunk):
                hits = np.nonzero(last[:, col] >= 0)[0]
                out[target] = {
                    self._labels[vi]: self._times[last[vi, col]]
                    for vi in hits.tolist()
                }
        return out

    def zero_one_labels(
        self,
        roots: Iterable[TemporalNodeTuple],
        *,
        spatial_cost: int = 1,
        causal_cost: int = 0,
        chunk_size: int | None = None,
        sweep_mode: str | None = None,
    ) -> Iterator[tuple[list[TemporalNodeTuple], np.ndarray]]:
        """(min, +) labels with 0/1 edge-family costs, as the label kernel's."""
        for cost, name in (
            (spatial_cost, "spatial_cost"),
            (causal_cost, "causal_cost"),
        ):
            if cost not in (0, 1):
                raise GraphError(f"{name} must be 0 or 1, got {cost!r}")
        spec = ("zero_one", int(spatial_cost), int(causal_cost))
        root_list = [(r[0], r[1]) for r in roots]
        return self._frontier_chunks(root_list, spec, "block", chunk_size)

    def fewest_hops(
        self,
        roots: Iterable[TemporalNodeTuple],
        *,
        chunk_size: int | None = None,
        sweep_mode: str | None = None,
    ) -> dict[TemporalNodeTuple, dict[TemporalNodeTuple, int]]:
        """Per root: minimal static-edge count per reached slot (hops decoded)."""
        spec = ("zero_one", 1, 0)
        out: dict[TemporalNodeTuple, dict[TemporalNodeTuple, int]] = {}
        root_list = [(r[0], r[1]) for r in roots]
        for chunk, merged in self._frontier_chunks(
            root_list, spec, "reached", chunk_size
        ):
            for col, root in enumerate(chunk):
                out[root] = merged[col]
        return out

    def tang_steps(
        self,
        source_nodes: Iterable[Node],
        *,
        horizon: int = 1,
        start_index: int = 0,
        chunk_size: int | None = None,
        sweep_mode: str | None = None,
    ) -> dict[Node, dict[Node, int]]:
        """Tang snapshot-count distances, the informed words flowing shard to shard."""
        if start_index < 0 or start_index >= self.sharded.num_snapshots:
            raise GraphError(f"start_index {start_index} out of range")
        spec = ("tang", int(horizon), int(start_index))
        size = chunk_size or self.chunk_size
        n = self.sharded.num_nodes
        w = bitops.words_for(n)
        sources = list(source_nodes)
        chunks: list[list[Node]] = []
        plans: list[tuple] = []
        for start in range(0, len(sources), size):
            chunk = sources[start : start + size]
            informed = np.zeros((len(chunk), w), dtype=np.uint64)
            for col, source in enumerate(chunk):
                vi = self._node_index.get(source)
                if vi is not None:
                    informed[col, vi >> 6] |= np.uint64(1) << np.uint64(vi & 63)
            chunks.append(chunk)
            plans.append((None, informed))
        out: dict[Node, dict[Node, int]] = {}
        for chunk, steps in zip(chunks, self._run_chunks(spec, "steps", plans)):
            for col, source in enumerate(chunk):
                vi = self._node_index.get(source)
                if vi is not None:
                    steps[vi, col] = 0
                known = np.nonzero(steps[:, col] >= 0)[0]
                out[source] = {
                    self._labels[v]: int(steps[v, col]) for v in known.tolist()
                }
        return out

    # ------------------------------------------------------------------ #
    # decoding helpers (the serving layer's surface)                      #
    # ------------------------------------------------------------------ #

    def reached_dict(
        self, dist: np.ndarray, col: int
    ) -> dict[TemporalNodeTuple, int]:
        """Decode one column of a global ``(T, N, R)`` block, as the kernel does."""
        t_arr, v_arr = np.nonzero(dist[:, :, col] >= 0)
        d_arr = dist[t_arr, v_arr, col]
        return {
            (self._labels[vi], self._times[ti]): int(d)
            for ti, vi, d in zip(t_arr.tolist(), v_arr.tolist(), d_arr.tolist())
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ShardedSweepDriver backend={self.backend} "
            f"shards={self.sharded.num_shards} workers={self.num_workers}>"
        )
