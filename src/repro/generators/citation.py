"""Synthetic citation-network generator (the Section V application substrate).

The paper sketches the application of the evolving-graph BFS to citation
networks: snapshot ``G[t]`` has authors active at time ``t`` as nodes and a
directed edge ``i -> j`` when author ``i`` cites author ``j`` in a
publication at time ``t``.  No dataset is specified, so this module provides
a synthetic generator with the qualitative properties the application needs:

* authors *enter* the field over time and may *retire* (changing node sets,
  which the paper explicitly allows),
* citations point backwards in influence: an author preferentially cites
  authors who have been active earlier and who are already highly cited
  (preferential attachment), plus occasional uniform citations,
* an author can be active in several epochs, creating the causal edges that
  carry influence forward in time.

The generator returns both the evolving graph and per-epoch author metadata
so examples can report human-readable results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import GraphError
from repro.graph.adjacency_list import AdjacencyListEvolvingGraph

__all__ = ["CitationNetwork", "generate_citation_network"]


@dataclass
class CitationNetwork:
    """A synthetic citation network plus its generation metadata.

    Attributes
    ----------
    graph:
        Evolving digraph: edge ``i -> j`` at epoch ``t`` means author ``i``
        cited author ``j`` during epoch ``t``.
    epochs:
        The ordered list of epoch labels (integers starting at 0).
    entry_epoch:
        For every author, the epoch at which they published first.
    authors_per_epoch:
        For every epoch, the list of authors who published during it.
    """

    graph: AdjacencyListEvolvingGraph
    epochs: list[int]
    entry_epoch: dict[int, int] = field(default_factory=dict)
    authors_per_epoch: dict[int, list[int]] = field(default_factory=dict)

    @property
    def num_authors(self) -> int:
        """Total number of authors that ever published."""
        return len(self.entry_epoch)

    def citations_in_epoch(self, epoch: int) -> int:
        """Number of citation edges recorded during ``epoch``."""
        return self.graph.num_static_edges_at(epoch)


def generate_citation_network(
    num_epochs: int = 20,
    *,
    initial_authors: int = 20,
    new_authors_per_epoch: int = 10,
    papers_per_author: float = 1.5,
    citations_per_paper: int = 3,
    activity_decay: float = 0.75,
    preferential_weight: float = 0.8,
    seed: int | np.random.Generator | None = None,
) -> CitationNetwork:
    """Generate a synthetic citation network as an evolving graph.

    Parameters
    ----------
    num_epochs:
        Number of time snapshots (publication epochs).
    initial_authors:
        Number of authors active in epoch 0.
    new_authors_per_epoch:
        Number of new authors entering the field at every later epoch.
    papers_per_author:
        Expected number of papers an *active* author publishes per epoch
        (Poisson distributed).
    citations_per_paper:
        Number of citations each paper makes (to distinct cited authors when
        possible).
    activity_decay:
        Probability that an author who was active in epoch ``t`` publishes
        again in epoch ``t+1``; controls how many causal edges arise.
    preferential_weight:
        Probability that a citation is drawn preferentially (proportional to
        1 + in-citations so far) rather than uniformly over known authors.
    seed:
        Seed or ``numpy`` Generator for reproducibility.

    Returns
    -------
    CitationNetwork
    """
    if num_epochs < 1:
        raise GraphError("a citation network needs at least one epoch")
    if initial_authors < 2:
        raise GraphError("at least two initial authors are required")
    if not 0.0 <= preferential_weight <= 1.0:
        raise GraphError("preferential_weight must lie in [0, 1]")
    if not 0.0 <= activity_decay <= 1.0:
        raise GraphError("activity_decay must lie in [0, 1]")

    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    epochs = list(range(num_epochs))
    graph = AdjacencyListEvolvingGraph(directed=True, timestamps=epochs)

    entry_epoch: dict[int, int] = {}
    authors_per_epoch: dict[int, list[int]] = {}
    next_author = 0
    citation_counts: dict[int, int] = {}
    currently_active: set[int] = set()

    for epoch in epochs:
        # authors entering the field this epoch
        n_new = initial_authors if epoch == 0 else new_authors_per_epoch
        newcomers = list(range(next_author, next_author + n_new))
        next_author += n_new
        for author in newcomers:
            entry_epoch[author] = epoch
            citation_counts.setdefault(author, 0)
        # returning authors keep publishing with probability activity_decay
        returning = [a for a in currently_active if rng.random() < activity_decay]
        publishing = sorted(set(newcomers) | set(returning))
        authors_per_epoch[epoch] = publishing

        known_authors = np.array(sorted(entry_epoch.keys()), dtype=np.int64)
        weights = np.array(
            [1 + citation_counts[a] for a in known_authors], dtype=np.float64
        )

        for author in publishing:
            n_papers = int(rng.poisson(papers_per_author))
            if epoch == 0 and n_papers == 0:
                n_papers = 1  # epoch-0 authors publish at least once to seed the network
            for _ in range(n_papers):
                candidates = known_authors[known_authors != author]
                if candidates.shape[0] == 0:
                    continue
                cand_weights = weights[known_authors != author]
                n_cite = min(citations_per_paper, candidates.shape[0])
                cited: set[int] = set()
                for _ in range(n_cite):
                    if rng.random() < preferential_weight:
                        probs = cand_weights / cand_weights.sum()
                        target = int(rng.choice(candidates, p=probs))
                    else:
                        target = int(rng.choice(candidates))
                    cited.add(target)
                for target in cited:
                    if graph.add_edge(author, target, epoch):
                        citation_counts[target] = citation_counts.get(target, 0) + 1
                        # keep the weight vector in sync for subsequent draws
                        weights[np.searchsorted(known_authors, target)] += 1.0

        currently_active = set(publishing)

    return CitationNetwork(
        graph=graph,
        epochs=epochs,
        entry_epoch=entry_epoch,
        authors_per_epoch=authors_per_epoch,
    )
