"""Random evolving-graph generators (the Figure-5 workload).

The paper's scaling experiment generates "a sequence of random (directed)
``IntEvolvingGraph``s with 10^5 active nodes and 10 time stamps", starting
from roughly 10^8 static edges and *consecutively adding* new random static
edges to produce graphs with 1.5x10^8, 1.8x10^8, ... edges.  The generators
below reproduce that construction at configurable (laptop-friendly) scale:

* :func:`random_evolving_graph` — a single random evolving graph with a given
  number of nodes, timestamps and static edges.
* :func:`incremental_edge_sequence` — a sequence of evolving graphs obtained
  by consecutively adding random edges to a base graph, which is exactly the
  Figure-5 sweep.
* :func:`random_snapshot_er` — per-snapshot Erdős–Rényi graphs with
  independent edge probability, a common synthetic model for evolving graphs.

All generators are deterministic given a NumPy ``Generator`` (or integer
seed) and produce edge triples in bulk with vectorised sampling, per the HPC
guide's advice to avoid Python-level loops for data generation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.graph.adjacency_list import AdjacencyListEvolvingGraph
from repro.graph.base import TemporalEdgeTuple

__all__ = [
    "random_temporal_edges",
    "random_evolving_graph",
    "incremental_edge_sequence",
    "random_snapshot_er",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_temporal_edges(
    num_nodes: int,
    num_timestamps: int,
    num_edges: int,
    *,
    seed: int | np.random.Generator | None = None,
    allow_self_loops: bool = False,
) -> list[TemporalEdgeTuple]:
    """Sample ``num_edges`` random temporal edges ``(u, v, t)`` with integer labels.

    Nodes are ``0 .. num_nodes-1`` and timestamps ``0 .. num_timestamps-1``.
    Edges are sampled uniformly with replacement and then de-duplicated, so
    the returned list can be slightly shorter than requested for very dense
    graphs; the Figure-5 regime (sparse graphs) is unaffected.
    """
    if num_nodes < 2:
        raise GraphError("random evolving graphs need at least 2 nodes")
    if num_timestamps < 1:
        raise GraphError("random evolving graphs need at least 1 timestamp")
    if num_edges < 0:
        raise GraphError("num_edges must be non-negative")
    rng = _rng(seed)
    # oversample slightly to compensate for duplicate removal
    oversample = int(num_edges * 1.05) + 16
    u = rng.integers(0, num_nodes, size=oversample, dtype=np.int64)
    v = rng.integers(0, num_nodes, size=oversample, dtype=np.int64)
    t = rng.integers(0, num_timestamps, size=oversample, dtype=np.int64)
    if not allow_self_loops:
        mask = u != v
        u, v, t = u[mask], v[mask], t[mask]
    # de-duplicate (u, v, t) triples while preserving order
    keys = (u * num_nodes + v) * num_timestamps + t
    _, first_idx = np.unique(keys, return_index=True)
    first_idx.sort()
    u, v, t = u[first_idx], v[first_idx], t[first_idx]
    u, v, t = u[:num_edges], v[:num_edges], t[:num_edges]
    return list(zip(u.tolist(), v.tolist(), t.tolist()))


def random_evolving_graph(
    num_nodes: int,
    num_timestamps: int,
    num_edges: int,
    *,
    seed: int | np.random.Generator | None = None,
    directed: bool = True,
) -> AdjacencyListEvolvingGraph:
    """A random evolving graph with ``num_edges`` static edges spread over the snapshots."""
    edges = random_temporal_edges(num_nodes, num_timestamps, num_edges, seed=seed)
    return AdjacencyListEvolvingGraph(
        edges, directed=directed, timestamps=list(range(num_timestamps))
    )


def incremental_edge_sequence(
    num_nodes: int,
    num_timestamps: int,
    edge_counts: Sequence[int],
    *,
    seed: int | np.random.Generator | None = None,
    directed: bool = True,
) -> Iterable[tuple[int, AdjacencyListEvolvingGraph]]:
    """Yield ``(target_edge_count, graph)`` pairs by consecutively adding random edges.

    This mirrors the Figure-5 construction: the first graph has
    ``edge_counts[0]`` static edges; each subsequent graph is the *same*
    graph object grown to the next target count by adding new random static
    edges (so causal edges may appear as nodes become active at new times).
    The caller receives the same underlying graph instance each iteration —
    copy it if snapshots of the sequence must be retained.
    """
    counts = list(edge_counts)
    if counts != sorted(counts):
        raise GraphError("edge_counts must be non-decreasing for incremental growth")
    rng = _rng(seed)
    graph = AdjacencyListEvolvingGraph(
        directed=directed, timestamps=list(range(num_timestamps))
    )
    current = 0
    for target in counts:
        deficit = target - current
        if deficit < 0:
            raise GraphError("edge_counts must be non-decreasing")
        while deficit > 0:
            batch = random_temporal_edges(num_nodes, num_timestamps, deficit, seed=rng)
            added = graph.add_edges_from(batch)
            if added == 0:
                # graph saturated: cannot reach the target edge count
                raise GraphError(
                    f"cannot grow the graph to {target} edges: "
                    f"only {current} distinct edges exist"
                )
            deficit -= added
            current += added
        yield target, graph


def random_snapshot_er(
    num_nodes: int,
    num_timestamps: int,
    edge_probability: float,
    *,
    seed: int | np.random.Generator | None = None,
    directed: bool = True,
) -> AdjacencyListEvolvingGraph:
    """Evolving graph whose snapshots are independent Erdős–Rényi ``G(n, p)`` graphs."""
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError("edge_probability must lie in [0, 1]")
    rng = _rng(seed)
    edges: list[TemporalEdgeTuple] = []
    for t in range(num_timestamps):
        # vectorised Bernoulli sampling over the full adjacency matrix
        matrix = rng.random((num_nodes, num_nodes)) < edge_probability
        np.fill_diagonal(matrix, False)
        if not directed:
            matrix = np.triu(matrix)
        rows, cols = np.nonzero(matrix)
        edges.extend(zip(rows.tolist(), cols.tolist(), [t] * rows.shape[0]))
    return AdjacencyListEvolvingGraph(
        edges, directed=directed, timestamps=list(range(num_timestamps))
    )
