"""Workload generators: random evolving graphs, growth models, citation networks, streams."""

from repro.generators.citation import CitationNetwork, generate_citation_network
from repro.generators.growth import (
    preferential_attachment_evolving,
    sliding_window_communication,
)
from repro.generators.random_evolving import (
    incremental_edge_sequence,
    random_evolving_graph,
    random_snapshot_er,
    random_temporal_edges,
)
from repro.generators.stream import EdgeStream, apply_stream

__all__ = [
    "random_temporal_edges",
    "random_evolving_graph",
    "incremental_edge_sequence",
    "random_snapshot_er",
    "preferential_attachment_evolving",
    "sliding_window_communication",
    "CitationNetwork",
    "generate_citation_network",
    "EdgeStream",
    "apply_stream",
]
