"""Temporal growth models: evolving graphs whose snapshots grow over time.

Beyond the uniform random graphs of the Figure-5 experiment, evolving-graph
applications (social networks, citation networks, communication logs) exhibit
heavy-tailed degree distributions and gradual growth.  These generators
provide standard synthetic models used by the examples, the ablation
benchmarks and the property-based tests:

* :func:`preferential_attachment_evolving` — a Barabási–Albert-style process
  unrolled over time: each snapshot contains the edges created during that
  interval, so earlier nodes accumulate more connections.
* :func:`sliding_window_communication` — a communication-log model: each
  snapshot is a set of conversations among a stable population, with a
  configurable fraction of repeated conversations between consecutive
  snapshots (temporal locality, which controls how bursty causal edges are).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graph.adjacency_list import AdjacencyListEvolvingGraph

__all__ = [
    "preferential_attachment_evolving",
    "sliding_window_communication",
]


def preferential_attachment_evolving(
    num_nodes: int,
    num_timestamps: int,
    edges_per_node: int = 2,
    *,
    seed: int | np.random.Generator | None = None,
    directed: bool = True,
) -> AdjacencyListEvolvingGraph:
    """Preferential-attachment growth unrolled into an evolving graph.

    Nodes arrive one at a time and connect to ``edges_per_node`` existing
    nodes chosen proportionally to their degree-so-far (plus one).  Arrivals
    are distributed evenly over the ``num_timestamps`` snapshots, so snapshot
    ``t`` holds the edges created during the ``t``-th interval of the growth
    process.
    """
    if num_nodes < edges_per_node + 1:
        raise GraphError("num_nodes must exceed edges_per_node")
    if num_timestamps < 1:
        raise GraphError("at least one timestamp is required")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    graph = AdjacencyListEvolvingGraph(
        directed=directed, timestamps=list(range(num_timestamps))
    )
    degree = np.zeros(num_nodes, dtype=np.float64)
    # seed clique among the first edges_per_node+1 nodes at time 0
    seed_size = edges_per_node + 1
    for i in range(seed_size):
        for j in range(i + 1, seed_size):
            graph.add_edge(i, j, 0)
            degree[i] += 1
            degree[j] += 1

    arrivals = np.arange(seed_size, num_nodes)
    # map each arrival to a timestamp, evenly spread
    times = np.minimum(
        (arrivals - seed_size) * num_timestamps // max(1, num_nodes - seed_size),
        num_timestamps - 1,
    )
    for node, t in zip(arrivals.tolist(), times.tolist()):
        existing = np.arange(node)
        weights = degree[:node] + 1.0
        probs = weights / weights.sum()
        k = min(edges_per_node, node)
        targets = rng.choice(existing, size=k, replace=False, p=probs)
        for target in targets.tolist():
            graph.add_edge(node, int(target), int(t))
            degree[node] += 1
            degree[int(target)] += 1
    return graph


def sliding_window_communication(
    num_nodes: int,
    num_timestamps: int,
    conversations_per_snapshot: int,
    *,
    repeat_fraction: float = 0.3,
    seed: int | np.random.Generator | None = None,
    directed: bool = True,
) -> AdjacencyListEvolvingGraph:
    """Communication-log model with temporal locality between consecutive snapshots.

    Each snapshot contains ``conversations_per_snapshot`` directed edges.  A
    fraction ``repeat_fraction`` of them repeat conversations from the
    previous snapshot (same ordered pair), the rest are fresh uniform pairs.
    Higher repeat fractions concentrate activity on fewer nodes and therefore
    produce proportionally more causal edges per static edge.
    """
    if num_nodes < 2:
        raise GraphError("at least two nodes are required")
    if not 0.0 <= repeat_fraction <= 1.0:
        raise GraphError("repeat_fraction must lie in [0, 1]")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    graph = AdjacencyListEvolvingGraph(
        directed=directed, timestamps=list(range(num_timestamps))
    )
    previous: list[tuple[int, int]] = []
    for t in range(num_timestamps):
        pairs: list[tuple[int, int]] = []
        n_repeat = (
            int(round(repeat_fraction * conversations_per_snapshot)) if previous else 0
        )
        if n_repeat and previous:
            idx = rng.integers(0, len(previous), size=n_repeat)
            pairs.extend(previous[i] for i in idx.tolist())
        while len(pairs) < conversations_per_snapshot:
            u = int(rng.integers(0, num_nodes))
            v = int(rng.integers(0, num_nodes))
            if u != v:
                pairs.append((u, v))
        for u, v in pairs:
            graph.add_edge(u, v, t)
        previous = pairs
    return graph
