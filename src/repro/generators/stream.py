"""Edge-stream utilities: feeding an evolving graph incrementally.

The Figure-5 experiment grows a single evolving graph by "consecutively
adding new random static edges".  More generally, evolving graphs are often
consumed from a stream of timestamped edge events.  This module provides a
small streaming layer:

* :class:`EdgeStream` — an iterator of edge events with optional batching,
  built from a list, a generator function or a random source.  Events are
  *signed*: a plain ``(u, v, t)`` triple inserts, and a ``("+", u, v, t)`` /
  ``("-", u, v, t)`` quadruple inserts/removes explicitly, so one stream can
  carry the mixed insert/remove traffic of a live feed.
* :func:`apply_stream` — fold a stream into an
  :class:`~repro.graph.adjacency_list.AdjacencyListEvolvingGraph`, optionally
  invoking a callback after each batch (used by the incremental-BFS example
  and the ablation benchmarks).  With ``compiled=True`` the fold also
  maintains the shared compiled artifact
  (:class:`~repro.graph.compiled.CompiledTemporalGraph`) across batches via
  *delta recompilation* — only the snapshots each batch touched are rebuilt,
  for removals exactly as for insertions, thanks to the signed mutation
  journal — and hands it to the callback, so streaming workloads (Figure-5
  growth, random edge streams, batched event replay) run end-to-end on
  compiled artifacts instead of recompiling from scratch per batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.graph.adjacency_list import AdjacencyListEvolvingGraph
from repro.graph.base import TemporalEdgeTuple
from repro.generators.random_evolving import random_temporal_edges

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.compiled import CompiledTemporalGraph

__all__ = ["EdgeStream", "apply_stream"]

#: An edge event: ``(u, v, t)`` inserts; ``(sign, u, v, t)`` with sign
#: ``"+"`` / ``"-"`` inserts or removes explicitly.
EdgeEvent = tuple


def _apply_event(graph: AdjacencyListEvolvingGraph, event: EdgeEvent) -> None:
    """Apply one signed event to ``graph`` (arrival order is preserved)."""
    if len(event) == 4:
        sign, u, v, t = event
        if sign == "+":
            graph.add_edge(u, v, t)
        elif sign == "-":
            graph.remove_edge(u, v, t)
        else:
            raise GraphError(
                f"signed edge events must start with '+' or '-', got {sign!r}"
            )
        return
    try:
        u, v, t = event
    except (TypeError, ValueError) as exc:
        raise GraphError(
            f"edge events must be (u, v, t) or (sign, u, v, t), got {event!r}"
        ) from exc
    graph.add_edge(u, v, t)


@dataclass
class EdgeStream:
    """A replayable stream of timestamped edge events.

    Attributes
    ----------
    events:
        The events in arrival order: ``(u, v, t)`` insertion triples and/or
        signed ``("+"/"-", u, v, t)`` quadruples (mixed freely).
    batch_size:
        Number of events yielded per batch by :meth:`batches`.
    """

    events: Sequence[EdgeEvent]
    batch_size: int = 1

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise GraphError("batch_size must be at least 1")
        self.events = list(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TemporalEdgeTuple]:
        return iter(self.events)

    def batches(self) -> Iterator[list[TemporalEdgeTuple]]:
        """Yield events in consecutive batches of ``batch_size``."""
        for start in range(0, len(self.events), self.batch_size):
            yield list(self.events[start : start + self.batch_size])

    @classmethod
    def random(
        cls,
        num_nodes: int,
        num_timestamps: int,
        num_events: int,
        *,
        batch_size: int = 1,
        time_ordered: bool = True,
        seed: int | np.random.Generator | None = None,
    ) -> "EdgeStream":
        """A random stream of distinct edge events.

        When ``time_ordered`` is true the events arrive sorted by timestamp,
        modelling a live feed; otherwise arrival order is random (late /
        out-of-order events), which evolving-graph representations must accept
        since Definition 1 places no constraint on insertion order.
        """
        events = random_temporal_edges(num_nodes, num_timestamps, num_events, seed=seed)
        if time_ordered:
            events.sort(key=lambda e: e[2])
        else:
            rng = (
                seed
                if isinstance(seed, np.random.Generator)
                else np.random.default_rng(seed)
            )
            order = rng.permutation(len(events))
            events = [events[i] for i in order.tolist()]
        return cls(events=events, batch_size=batch_size)


def apply_stream(
    stream: EdgeStream | Iterable[TemporalEdgeTuple],
    *,
    graph: AdjacencyListEvolvingGraph | None = None,
    directed: bool = True,
    on_batch: Callable[..., None] | None = None,
    compiled: bool = False,
) -> AdjacencyListEvolvingGraph:
    """Fold an edge stream into an evolving graph.

    Parameters
    ----------
    stream:
        An :class:`EdgeStream` (its batches are respected) or any iterable
        of events (treated as one event per batch).  Events are ``(u, v, t)``
        insertion triples or signed ``("+"/"-", u, v, t)`` quadruples;
        within a batch they apply in arrival order, so a remove-then-re-add
        of the same edge lands in the graph exactly as streamed.
    graph:
        Graph to extend in place; a fresh one is created when omitted.
    directed:
        Directedness of the freshly created graph (ignored when ``graph`` is given).
    on_batch:
        Callback invoked after each batch has been applied.  Without
        ``compiled`` it receives ``(graph, batch)``; with ``compiled=True``
        it receives ``(graph, batch, artifact)`` where ``artifact`` is the
        up-to-date :class:`~repro.graph.compiled.CompiledTemporalGraph`.
        Useful for measuring incremental re-search cost.
    compiled:
        Maintain the engine's compiled artifact across the fold.  After each
        batch the artifact is refreshed through the delta-aware dispatch
        cache (:func:`repro.engine.get_compiled`): only the snapshots the
        batch touched are recompiled, so per-batch cost is proportional to
        the batch, not the graph.  Downstream engine consumers (searches,
        analytics, :func:`repro.parallel.batch.batch_bfs`) then hit the same
        cache entry without compiling anything.
    """
    if graph is None:
        graph = AdjacencyListEvolvingGraph(directed=directed)
    if isinstance(stream, EdgeStream):
        batch_iter: Iterable[list[EdgeEvent]] = stream.batches()
    else:
        batch_iter = ([event] for event in stream)
    if compiled:
        from repro.engine import get_compiled

    artifact: "CompiledTemporalGraph | None" = None
    for batch in batch_iter:
        for event in batch:
            _apply_event(graph, event)
        if compiled:
            artifact = get_compiled(graph)  # delta recompile of the touched snapshots
        if on_batch is not None:
            if compiled:
                on_batch(graph, list(batch), artifact)
            else:
                on_batch(graph, list(batch))
    return graph
