"""Time-sharded compiled artifacts: the engine's unit of out-of-core scale.

A :class:`~repro.graph.compiled.CompiledTemporalGraph` holds the full
``(T, N)`` operator stack in one process's RAM, which caps both the snapshot
count and the node count well below the production-scale target.
:class:`ShardedTemporalGraph` breaks that cap along the *time* axis: the
artifact becomes a sequence of per-snapshot-range shards, each itself a
``CompiledTemporalGraph`` over the **full node universe** but only its own
contiguous slice of snapshots.  The causal cumulative-OR step is a prefix
operation over snapshots, so a sweep over shard ``i`` depends on earlier
shards only through one packed ``(R, W)`` boundary block — see
:mod:`repro.engine.sharded_sweep` for the pipelined driver that exploits
this.

Shard boundaries are chosen by the weighted contiguous partition of
:mod:`repro.parallel.partition` (:func:`~repro.parallel.partition.weighted_contiguous_split`
over :func:`~repro.parallel.partition.compiled_snapshot_weights`), so every
shard carries a near-equal share of the stored entries rather than a
near-equal snapshot count.

Two storage regimes share this one class:

* **in-memory** (:meth:`ShardedTemporalGraph.from_compiled`) — each shard's
  operator list and activeness rows are *slices* of the monolithic stacks
  (zero copies; the matrices are shared objects).  Shards pickle
  independently, which is what the process-pipeline backend ships to its
  persistent workers once at startup;
* **store-backed** (:func:`repro.io.mmap_store.load_sharded`) — shards are
  opened lazily from memory-mapped CSR buffers on disk and can be
  :meth:`released <release>` between uses, so a sweep holds one shard's
  operators in address space at a time.  :attr:`peak_open_bytes` records the
  high-water mark of simultaneously open operator bytes, which the
  out-of-core benchmark gates against its memory budget.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.graph.base import BaseEvolvingGraph, Node, Time
from repro.graph.compiled import CompiledTemporalGraph

__all__ = ["ShardedTemporalGraph", "compute_shard_layout", "operator_stack_bytes"]


def operator_stack_bytes(operators: Sequence) -> int:
    """Total CSR buffer bytes (``data`` + ``indices`` + ``indptr``) of a stack."""
    return int(
        sum(m.data.nbytes + m.indices.nbytes + m.indptr.nbytes for m in operators)
    )


def compute_shard_layout(
    compiled: CompiledTemporalGraph, num_shards: int
) -> tuple[tuple[int, int], ...]:
    """Contiguous ``(start, stop)`` snapshot ranges balancing stored entries.

    The nnz-weighted layout rule shared by :meth:`ShardedTemporalGraph.from_compiled`
    and the dispatch cache (whose sharded entries are keyed on
    ``(mutation_version, shard_layout)``): same artifact, same requested
    shard count — same boundaries, deterministically.
    """
    from repro.parallel.partition import (
        compiled_snapshot_weights,
        weighted_contiguous_split,
    )

    weights = compiled_snapshot_weights(compiled)
    return tuple(weighted_contiguous_split(weights, num_shards))


class ShardStore(Protocol):
    """What a lazy shard backend must provide (see :mod:`repro.io.mmap_store`)."""

    def open_shard(self, index: int) -> CompiledTemporalGraph:
        """Materialize shard ``index`` (memory-mapped buffers allowed)."""
        ...  # pragma: no cover - protocol

    def shard_bytes(self, index: int) -> int:
        """Logical operator bytes of shard ``index``, without opening it."""
        ...  # pragma: no cover - protocol


class ShardedTemporalGraph:
    """A compiled evolving graph as a sequence of per-time-range shards.

    Construct with :meth:`from_compiled` (in-memory slicing) or
    :func:`repro.io.mmap_store.load_sharded` (lazy memory-mapped shards).
    Like the monolithic artifact this is an immutable *snapshot* of the
    source graph, stamped with its ``mutation_version``; :meth:`is_current`
    tells caches and the serving layer exactly when it is stale.
    """

    def __init__(
        self,
        *,
        node_labels: Sequence[Node],
        times: Sequence[Time],
        boundaries: Sequence[tuple[int, int]],
        mutation_version: int,
        is_directed: bool,
        active_mask: np.ndarray,
        shards: Sequence[CompiledTemporalGraph | None] | None = None,
        shard_nnz: Sequence[int] | None = None,
        store: ShardStore | None = None,
    ) -> None:
        self._labels: list[Node] = list(node_labels)
        self._node_index: dict[Node, int] = {v: i for i, v in enumerate(self._labels)}
        self._times: list[Time] = list(times)
        self._time_index: dict[Time, int] = {t: i for i, t in enumerate(self._times)}
        self._boundaries: list[tuple[int, int]] = [
            (int(a), int(b)) for a, b in boundaries
        ]
        self._validate_boundaries()
        self._version = int(mutation_version)
        self._directed = bool(is_directed)
        self._n = len(self._labels)
        mask = np.asarray(active_mask, dtype=bool)
        if mask.shape != (len(self._times), self._n):
            raise GraphError(
                f"active mask shape {mask.shape} does not match "
                f"({len(self._times)}, {self._n})"
            )
        self._active = mask
        self._store = store
        if shards is None:
            if store is None:
                raise GraphError("ShardedTemporalGraph needs shards or a store")
            self._shards: list[CompiledTemporalGraph | None] = [None] * len(
                self._boundaries
            )
        else:
            self._shards = list(shards)
            if len(self._shards) != len(self._boundaries):
                raise GraphError(
                    f"got {len(self._shards)} shards for "
                    f"{len(self._boundaries)} boundary ranges"
                )
        if shard_nnz is not None:
            self._shard_nnz = [int(x) for x in shard_nnz]
        else:
            self._shard_nnz = [
                int(sum(m.nnz for m in shard.forward_operators))
                if shard is not None
                else 0
                for shard in self._shards
            ]
        # open-bytes accounting: for store-backed artifacts this is the
        # out-of-core contract the benchmark gates (one shard resident at a
        # time under the serial driver); in-memory shards are always "open"
        self._open_bytes = sum(
            self._shard_operator_bytes(i)
            for i, shard in enumerate(self._shards)
            if shard is not None
        )
        self.peak_open_bytes = self._open_bytes
        #: ``{"rebuilt": ..., "reused": ...}`` shard counts when this
        #: artifact came from :meth:`recompile`'s delta path, else ``None``
        self.delta_stats: dict[str, int] | None = None

    def _validate_boundaries(self) -> None:
        if not self._boundaries:
            raise GraphError("ShardedTemporalGraph requires at least one shard")
        expected = 0
        for a, b in self._boundaries:
            if a != expected or b <= a:
                raise GraphError(
                    f"shard boundaries {self._boundaries} are not a contiguous "
                    f"cover of the {len(self._times)} snapshots"
                )
            expected = b
        if expected != len(self._times):
            raise GraphError(
                f"shard boundaries {self._boundaries} do not cover all "
                f"{len(self._times)} snapshots"
            )

    # ------------------------------------------------------------------ #
    # construction                                                        #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_compiled(
        cls,
        compiled: CompiledTemporalGraph,
        num_shards: int | None = None,
        *,
        boundaries: Sequence[tuple[int, int]] | None = None,
    ) -> "ShardedTemporalGraph":
        """Slice a monolithic artifact into in-memory time shards (zero-copy).

        Boundaries default to the nnz-weighted contiguous layout of
        :func:`compute_shard_layout`; pass explicit ``boundaries`` for a
        custom (e.g. deliberately ragged) layout.  Each shard shares the
        monolithic stack's matrix objects and activeness rows — slicing
        costs list/view construction only.
        """
        if boundaries is None:
            if num_shards is None:
                raise GraphError("from_compiled needs num_shards or boundaries")
            boundaries = compute_shard_layout(compiled, num_shards)
        times = compiled.times
        forward = compiled.forward_operators
        backward = compiled.backward_operators if compiled.transposes_built else None
        mask = compiled.active_mask
        shards: list[CompiledTemporalGraph] = []
        for a, b in boundaries:
            shards.append(
                CompiledTemporalGraph(
                    node_labels=compiled.node_labels,
                    times=times[a:b],
                    forward_operators=forward[a:b],
                    is_directed=compiled.is_directed,
                    mutation_version=compiled.mutation_version,
                    backward_operators=backward[a:b] if backward else None,
                    active_mask=mask[a:b],
                )
            )
        return cls(
            node_labels=compiled.node_labels,
            times=times,
            boundaries=boundaries,
            mutation_version=compiled.mutation_version,
            is_directed=compiled.is_directed,
            active_mask=mask,
            shards=shards,
        )

    @classmethod
    def from_graph(
        cls, graph: BaseEvolvingGraph, num_shards: int
    ) -> "ShardedTemporalGraph":
        """Compile ``graph`` (through the cached dispatch path) and shard it."""
        from repro.engine import get_compiled

        return cls.from_compiled(get_compiled(graph), num_shards)

    @classmethod
    def recompile(
        cls,
        compiled: CompiledTemporalGraph,
        previous: "ShardedTemporalGraph | None",
        num_shards: int | None = None,
    ) -> "ShardedTemporalGraph":
        """Re-shard a delta-recompiled artifact, reusing every clean shard.

        The monolithic delta recompile
        (:meth:`~repro.graph.compiled.CompiledTemporalGraph.recompile`)
        shares each untouched snapshot's operator *object* with the previous
        artifact — so a shard whose every snapshot operator is shared is
        observationally unchanged, and this constructor carries the previous
        shard artifact over verbatim (same object, same matrices, same
        kernel-warmable slices) instead of slicing a fresh one.  Only shards
        a mutation batch actually touched are re-sliced: streamed mutations
        cost O(dirty shards), not O(shards), which is what lets a sharded
        serving deployment delta-recompile at shard granularity (ROADMAP 2a).

        Falls back to :meth:`from_compiled` (and a fresh nnz-weighted
        layout) whenever ``previous`` is missing, store-backed, or describes
        a different snapshot/node universe.  The result's ``delta_stats``
        attribute records ``{"rebuilt": ..., "reused": ...}`` shard counts,
        or is ``None`` on the fallback path — mirroring the monolithic
        artifact's contract.
        """
        if (
            previous is None
            or previous.store_backed
            or previous._labels != compiled.node_labels
            or previous._times != list(compiled.times)
            or previous._directed != compiled.is_directed
        ):
            if num_shards is None:
                num_shards = previous.num_shards if previous is not None else 1
            sharded = cls.from_compiled(compiled, num_shards)
            sharded.delta_stats = None
            return sharded
        boundaries = previous.boundaries
        forward = compiled.forward_operators
        backward = (
            compiled.backward_operators if compiled.transposes_built else None
        )
        mask = compiled.active_mask
        shards: list[CompiledTemporalGraph] = []
        reused = 0
        for i, (a, b) in enumerate(boundaries):
            prev_shard = previous._shards[i]
            if prev_shard is not None and all(
                prev_shard.forward_operators[k - a] is forward[k]
                for k in range(a, b)
            ):
                # every snapshot operator is the shared object the delta
                # recompile carried over: the shard is clean, keep it (its
                # activeness rows were copied from the same snapshots)
                shards.append(prev_shard)
                reused += 1
                continue
            shards.append(
                CompiledTemporalGraph(
                    node_labels=compiled.node_labels,
                    times=compiled.times[a:b],
                    forward_operators=forward[a:b],
                    is_directed=compiled.is_directed,
                    mutation_version=compiled.mutation_version,
                    backward_operators=backward[a:b] if backward else None,
                    active_mask=mask[a:b],
                )
            )
        sharded = cls(
            node_labels=compiled.node_labels,
            times=compiled.times,
            boundaries=boundaries,
            mutation_version=compiled.mutation_version,
            is_directed=compiled.is_directed,
            active_mask=mask,
            shards=shards,
        )
        sharded.delta_stats = {"rebuilt": len(boundaries) - reused, "reused": reused}
        return sharded

    # ------------------------------------------------------------------ #
    # structure                                                           #
    # ------------------------------------------------------------------ #

    @property
    def node_labels(self) -> list[Node]:
        """Node labels of the shared universe (identical across shards)."""
        return list(self._labels)

    @property
    def node_index(self) -> dict[Node, int]:
        """Mapping from node label to its row/column index."""
        return dict(self._node_index)

    @property
    def times(self) -> tuple[Time, ...]:
        """All snapshot labels, in time order, across every shard."""
        return tuple(self._times)

    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def num_snapshots(self) -> int:
        return len(self._times)

    @property
    def num_shards(self) -> int:
        return len(self._boundaries)

    @property
    def boundaries(self) -> tuple[tuple[int, int], ...]:
        """Half-open global snapshot ranges, one per shard, in time order."""
        return tuple(self._boundaries)

    @property
    def layout_key(self) -> tuple[tuple[int, int], ...]:
        """Hashable shard-layout identity (the dispatch cache's second key)."""
        return tuple(self._boundaries)

    @property
    def mutation_version(self) -> int:
        return self._version

    @property
    def is_directed(self) -> bool:
        return self._directed

    @property
    def active_mask(self) -> np.ndarray:
        """The full ``(T, N)`` activeness mask (eager — it is the small part)."""
        return self._active

    @property
    def shard_nnz(self) -> list[int]:
        """Forward-stack stored entries per shard (pipeline load balancing)."""
        return list(self._shard_nnz)

    @property
    def store_backed(self) -> bool:
        """Whether shards can be released back to their on-disk store."""
        return self._store is not None

    @property
    def open_bytes(self) -> int:
        """Operator bytes of the shards currently materialized in memory."""
        return self._open_bytes

    def is_current(self, graph: BaseEvolvingGraph) -> bool:
        """Whether this artifact still describes ``graph`` exactly."""
        return graph.mutation_version == self._version

    def is_active(self, node: Node, time: Time) -> bool:
        """Whether ``(node, time)`` is active, per the eager global mask."""
        ti = self._time_index.get(time)
        vi = self._node_index.get(node)
        if ti is None or vi is None:
            return False
        return bool(self._active[ti, vi])

    def slot(self, node: Node, time: Time) -> tuple[int, int] | None:
        """The global ``(time index, node index)`` of a temporal node."""
        ti = self._time_index.get(time)
        vi = self._node_index.get(node)
        if ti is None or vi is None:
            return None
        return ti, vi

    def shard_of_snapshot(self, position: int) -> int:
        """Index of the shard containing global snapshot ``position``."""
        for i, (a, b) in enumerate(self._boundaries):
            if a <= position < b:
                return i
        raise GraphError(f"snapshot position {position} out of range")

    # ------------------------------------------------------------------ #
    # shard access                                                        #
    # ------------------------------------------------------------------ #

    def shard(self, index: int) -> CompiledTemporalGraph:
        """The shard artifact at ``index``, opening it from the store if lazy."""
        shard = self._shards[index]
        if shard is None:
            shard = self._store.open_shard(index)
            self._shards[index] = shard
            self._shard_nnz[index] = int(sum(m.nnz for m in shard.forward_operators))
            self._open_bytes += self._shard_operator_bytes(index)
            self.peak_open_bytes = max(self.peak_open_bytes, self._open_bytes)
        return shard

    def release(self, index: int) -> None:
        """Drop a store-backed shard from memory (no-op for in-memory shards).

        The next :meth:`shard` call reopens it from the memory-mapped store;
        releasing between shards is what keeps the serial out-of-core sweep's
        :attr:`peak_open_bytes` at one shard instead of the whole stack.
        """
        if self._store is None:
            return
        if self._shards[index] is not None:
            self._open_bytes -= self._shard_operator_bytes(index)
            self._shards[index] = None

    def materialized(self, index: int) -> bool:
        """Whether shard ``index`` is currently resident in memory."""
        return self._shards[index] is not None

    def _shard_operator_bytes(self, index: int) -> int:
        shard = self._shards[index]
        if shard is not None:
            total = operator_stack_bytes(shard.forward_operators)
            if shard.transposes_built and shard.is_directed:
                total += operator_stack_bytes(shard.backward_operators)
            return total
        if self._store is not None:
            return self._store.shard_bytes(index)
        return 0

    @property
    def operator_bytes(self) -> int:
        """Logical operator bytes across *all* shards (open or not)."""
        return sum(self._shard_operator_bytes(i) for i in range(self.num_shards))

    def stats(self) -> dict:
        """Shard-layout and residency accounting (benchmarks and tests)."""
        return {
            "num_shards": self.num_shards,
            "boundaries": self.boundaries,
            "shard_nnz": self.shard_nnz,
            "shard_bytes": [
                self._shard_operator_bytes(i) for i in range(self.num_shards)
            ],
            "operator_bytes": self.operator_bytes,
            "open_bytes": self.open_bytes,
            "peak_open_bytes": self.peak_open_bytes,
            "store_backed": self.store_backed,
            "mutation_version": self._version,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ShardedTemporalGraph shards={self.num_shards} "
            f"snapshots={self.num_snapshots} nodes={self.num_nodes} "
            f"version={self._version} store_backed={self.store_backed}>"
        )
