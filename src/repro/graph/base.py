"""Abstract interface shared by every evolving-graph representation.

The paper (Definition 1) models an evolving graph ``G_n`` as a time-ordered
sequence of static graphs ``<G[1], ..., G[n]>`` with time labels
``t_1 < t_2 < ... < t_n``.  The central queries the BFS of Algorithm 1 needs
are:

* which timestamps exist,
* which nodes are *active* at a timestamp (Definition 3),
* the spatial out-neighbours of a node within one snapshot, and
* the *forward neighbours* of a temporal node (Definition 5), i.e. the union
  of spatial neighbours at the same time and the same node at later active
  times (causal edges, the set ``E'`` of Theorem 1).

:class:`BaseEvolvingGraph` provides default implementations of the derived
queries (activeness, forward/backward neighbours, causal edges, counting) on
top of a small set of primitive methods that each concrete representation
implements.  Concrete representations are free to override the derived
queries with faster specialised versions.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import Hashable, Iterator, Sequence

from repro.exceptions import InactiveNodeError, TimestampNotFoundError

Node = Hashable
Time = Hashable
TemporalNodeTuple = tuple[Node, Time]
EdgeTuple = tuple[Node, Node]
TemporalEdgeTuple = tuple[Node, Node, Time]

__all__ = [
    "Node",
    "Time",
    "TemporalNodeTuple",
    "EdgeTuple",
    "TemporalEdgeTuple",
    "BaseEvolvingGraph",
]


class BaseEvolvingGraph(ABC):
    """Abstract base class for evolving-graph representations.

    Subclasses must implement the primitive queries
    :meth:`timestamps`, :meth:`edges_at`, :meth:`out_neighbors_at`,
    :meth:`in_neighbors_at` and :meth:`is_directed`.  Everything else has a
    default implementation expressed in terms of those primitives.
    """

    # ------------------------------------------------------------------ #
    # primitives                                                         #
    # ------------------------------------------------------------------ #

    @property
    @abstractmethod
    def is_directed(self) -> bool:
        """Whether edges are directed.  Undirected edges are traversed both ways."""

    @property
    @abstractmethod
    def timestamps(self) -> Sequence[Time]:
        """The sorted sequence of distinct timestamps ``t_1 < ... < t_n``."""

    @abstractmethod
    def edges_at(self, time: Time) -> Iterator[EdgeTuple]:
        """Iterate over the (directed) edges ``(u, v)`` of the snapshot at ``time``.

        For undirected graphs each stored edge is yielded once, in insertion
        orientation.
        """

    @abstractmethod
    def out_neighbors_at(self, node: Node, time: Time) -> Iterator[Node]:
        """Spatial out-neighbours of ``node`` in the snapshot at ``time``.

        For undirected graphs this is simply the set of neighbours.  Nodes
        that do not appear at ``time`` have no neighbours (empty iterator).
        """

    @abstractmethod
    def in_neighbors_at(self, node: Node, time: Time) -> Iterator[Node]:
        """Spatial in-neighbours of ``node`` in the snapshot at ``time``."""

    # ------------------------------------------------------------------ #
    # mutation tracking                                                  #
    # ------------------------------------------------------------------ #

    #: Class-level default; instances shadow it on their first mutation.
    _mutation_version: int = 0

    @property
    def mutation_version(self) -> int:
        """Monotonically increasing counter of structural mutations.

        Every mutating operation (``add_edge``, ``add_timestamp``,
        ``add_snapshot``, ``remove_edge``) bumps this counter, including
        count-preserving edits such as removing one edge and adding another.
        Compiled artifacts (:class:`~repro.graph.compiled.CompiledTemporalGraph`)
        and the engine's kernel cache key on ``(graph, mutation_version)``,
        which makes cache invalidation exact instead of heuristic.  Immutable
        representations report a constant ``0``.
        """
        return self._mutation_version

    def _bump_mutation_version(self) -> None:
        """Record a structural mutation (called by every mutating operation)."""
        self._mutation_version = self._mutation_version + 1

    def snapshot_versions(self) -> dict[Time, int] | None:
        """Per-snapshot last-modified stamps, or ``None`` when untracked.

        Representations that know *which* snapshot each mutation touched
        return ``{time: stamp}`` where a snapshot's stamp changes exactly when
        one of its edges (or its existence) does.  Delta compilation
        (:meth:`repro.graph.compiled.CompiledTemporalGraph.recompile`) diffs
        these maps to rebuild only the touched snapshots' operators.  The
        default ``None`` means "no per-snapshot tracking": consumers must fall
        back to a full recompile on any :attr:`mutation_version` change.
        """
        return None

    def edge_insertions_since(self, version: int) -> list[TemporalEdgeTuple] | None:
        """Edges inserted since ``version``, or ``None`` when unreconstructible.

        A non-``None`` return value is a *completeness guarantee*: the edge
        sets at the current :attr:`mutation_version` equal the edge sets at
        ``version`` plus exactly these ``(u, v, t)`` insertions (snapshot
        registrations may also have happened; they change no edge set).
        Delta compilation uses this to patch a snapshot's CSR operator with
        one sparse addition instead of re-walking the whole snapshot.
        Representations without a mutation journal — or whose journal saw a
        removal in the window or was trimmed past ``version`` — return
        ``None``; mixed-batch consumers should try
        :meth:`edge_mutations_since`, and rebuild the dirty snapshots from
        :meth:`edges_at_unordered` as the last resort.
        """
        return None

    def edge_mutations_since(
        self, version: int
    ) -> tuple[list[TemporalEdgeTuple], list[TemporalEdgeTuple]] | None:
        """Net ``(insertions, removals)`` since ``version``, or ``None``.

        The signed generalization of :meth:`edge_insertions_since`: a
        non-``None`` return value guarantees the edge sets at the current
        :attr:`mutation_version` equal the edge sets at ``version`` plus the
        ``insertions`` minus the ``removals`` (netted per edge and time, so
        an edge inserted and removed inside the window appears in neither
        list).  Delta compilation uses this to patch a dirty snapshot's CSR
        operator with one sparse addition and one sparse subtraction.
        Representations without a signed journal return ``None``, and
        consumers fall back to :meth:`edge_insertions_since` or a
        per-snapshot rebuild.
        """
        return None

    def compile(self) -> "CompiledTemporalGraph":
        """Compile this graph into an immutable sparse execution artifact.

        Convenience wrapper around
        :meth:`repro.graph.compiled.CompiledTemporalGraph.from_graph`; most
        callers should prefer :func:`repro.engine.get_compiled`, which caches
        the artifact per ``(graph, mutation_version)``.
        """
        from repro.graph.compiled import CompiledTemporalGraph

        return CompiledTemporalGraph.from_graph(self)

    # ------------------------------------------------------------------ #
    # derived structural queries                                         #
    # ------------------------------------------------------------------ #

    @property
    def num_timestamps(self) -> int:
        """Number of snapshots ``n`` in the evolving graph."""
        return len(self.timestamps)

    def has_timestamp(self, time: Time) -> bool:
        """Return ``True`` when a snapshot with label ``time`` exists."""
        return time in set(self.timestamps)

    def _require_timestamp(self, time: Time) -> None:
        if not self.has_timestamp(time):
            raise TimestampNotFoundError(time)

    def nodes_at(self, time: Time) -> set[Node]:
        """All nodes that appear in at least one edge of the snapshot at ``time``."""
        nodes: set[Node] = set()
        for u, v in self.edges_at(time):
            nodes.add(u)
            nodes.add(v)
        return nodes

    def active_nodes_at(self, time: Time) -> set[Node]:
        """Active nodes at ``time`` (Definition 3): incident to an edge to *another* node."""
        nodes: set[Node] = set()
        for u, v in self.edges_at(time):
            if u != v:
                nodes.add(u)
                nodes.add(v)
        return nodes

    def is_active(self, node: Node, time: Time) -> bool:
        """Whether the temporal node ``(node, time)`` is active (Definition 3)."""
        return node in self.active_nodes_at(time)

    def active_temporal_nodes(self) -> list[TemporalNodeTuple]:
        """All active temporal nodes, ordered by time then node (the set ``V`` of Theorem 1)."""
        out: list[TemporalNodeTuple] = []
        for t in self.timestamps:
            for v in sorted(self.active_nodes_at(t), key=repr):
                out.append((v, t))
        return out

    def active_times(self, node: Node) -> list[Time]:
        """Sorted timestamps at which ``node`` is active."""
        return [t for t in self.timestamps if self.is_active(node, t)]

    def nodes(self) -> set[Node]:
        """The union of all node identities appearing at any time."""
        out: set[Node] = set()
        for t in self.timestamps:
            out |= self.nodes_at(t)
        return out

    def num_static_edges(self) -> int:
        """Total number of static edges ``|E~|`` summed over all snapshots."""
        return sum(1 for t in self.timestamps for _ in self.edges_at(t))

    def temporal_edges(self) -> Iterator[TemporalEdgeTuple]:
        """Iterate over every static edge with its time label ``(u, v, t)``."""
        for t in self.timestamps:
            for u, v in self.edges_at(t):
                yield (u, v, t)

    def temporal_edges_unordered(self) -> Iterator[TemporalEdgeTuple]:
        """Like :meth:`temporal_edges` but with no ordering guarantee.

        Bulk consumers that do not care about edge order (e.g. the frontier
        engine compiling snapshot matrices) use this hook; representations
        whose ordered iteration pays a sort override it with a plain dump.
        """
        return self.temporal_edges()

    def edges_at_unordered(self, time: Time) -> Iterator[EdgeTuple]:
        """Like :meth:`edges_at` but with no ordering guarantee.

        The per-snapshot twin of :meth:`temporal_edges_unordered`: delta
        compilation rebuilds dirty snapshots through this hook, so
        representations whose :meth:`edges_at` pays a sort should override
        it with a plain dump.
        """
        return self.edges_at(time)

    def has_edge(self, u: Node, v: Node, time: Time) -> bool:
        """Whether the snapshot at ``time`` contains the edge ``u -> v``.

        For undirected graphs the orientation is ignored.
        """
        if not self.has_timestamp(time):
            return False
        for a, b in self.edges_at(time):
            if (a, b) == (u, v):
                return True
            if not self.is_directed and (b, a) == (u, v):
                return True
        return False

    # ------------------------------------------------------------------ #
    # temporal-path structure                                            #
    # ------------------------------------------------------------------ #

    def causal_out_times(self, node: Node, time: Time) -> list[Time]:
        """Timestamps ``t' > time`` at which ``node`` is active (causal edge targets)."""
        times = self.active_times(node)
        idx = bisect.bisect_right(times, time)
        return times[idx:]

    def causal_in_times(self, node: Node, time: Time) -> list[Time]:
        """Timestamps ``t' < time`` at which ``node`` is active (causal edge sources)."""
        times = self.active_times(node)
        idx = bisect.bisect_left(times, time)
        return times[:idx]

    def causal_edges(self) -> Iterator[tuple[TemporalNodeTuple, TemporalNodeTuple]]:
        """Iterate over the causal edge set ``E'`` of Theorem 1.

        ``E' = {((v, s), (v, t)) : (v, s), (v, t) active, s < t}`` — i.e. *all*
        ordered pairs of active appearances of the same node, not only
        consecutive ones, exactly as in the paper's definition.
        """
        for v in sorted(self.nodes(), key=repr):
            times = self.active_times(v)
            for i, s in enumerate(times):
                for t in times[i + 1 :]:
                    yield ((v, s), (v, t))

    def num_causal_edges(self) -> int:
        """Number of causal edges ``|E'|``."""
        total = 0
        for v in self.nodes():
            k = len(self.active_times(v))
            total += k * (k - 1) // 2
        return total

    def forward_neighbors(self, node: Node, time: Time) -> list[TemporalNodeTuple]:
        """Forward neighbours of the temporal node ``(node, time)`` (Definition 5).

        These are the temporal nodes reachable by a temporal path of length 2:

        * ``(w, time)`` for every spatial out-neighbour ``w`` of ``node`` at
          ``time`` (static edges ``E~``), and
        * ``(node, t')`` for every later timestamp ``t'`` at which ``node`` is
          active (causal edges ``E'``).

        An inactive temporal node has no forward neighbours, because every
        temporal path must consist solely of active nodes (Definition 4).
        """
        if not self.is_active(node, time):
            return []
        result: list[TemporalNodeTuple] = []
        seen: set[TemporalNodeTuple] = set()
        for w in self.out_neighbors_at(node, time):
            if w == node:
                continue
            tn = (w, time)
            if tn not in seen:
                seen.add(tn)
                result.append(tn)
        for t_later in self.causal_out_times(node, time):
            tn = (node, t_later)
            if tn not in seen:
                seen.add(tn)
                result.append(tn)
        return result

    def backward_neighbors(self, node: Node, time: Time) -> list[TemporalNodeTuple]:
        """Backward neighbours: temporal nodes of which ``(node, time)`` is a forward neighbour.

        Used by the time-reversed search of Section V (``t -> -t``
        transformation): spatial in-neighbours at the same time plus earlier
        active appearances of the same node.
        """
        if not self.is_active(node, time):
            return []
        result: list[TemporalNodeTuple] = []
        seen: set[TemporalNodeTuple] = set()
        for w in self.in_neighbors_at(node, time):
            if w == node:
                continue
            tn = (w, time)
            if tn not in seen:
                seen.add(tn)
                result.append(tn)
        for t_earlier in self.causal_in_times(node, time):
            tn = (node, t_earlier)
            if tn not in seen:
                seen.add(tn)
                result.append(tn)
        return result

    def require_active(self, node: Node, time: Time) -> None:
        """Raise :class:`InactiveNodeError` unless ``(node, time)`` is active."""
        if not self.is_active(node, time):
            raise InactiveNodeError(node, time)

    # ------------------------------------------------------------------ #
    # dunder helpers                                                     #
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        """Number of snapshots (same as :attr:`num_timestamps`)."""
        return self.num_timestamps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} "
            f"n_timestamps={self.num_timestamps} "
            f"n_nodes={len(self.nodes())} "
            f"n_static_edges={self.num_static_edges()} "
            f"directed={self.is_directed}>"
        )

    # ------------------------------------------------------------------ #
    # bulk helpers used by converters                                    #
    # ------------------------------------------------------------------ #

    def snapshot_edge_lists(self) -> dict[Time, list[EdgeTuple]]:
        """Return ``{t: [(u, v), ...]}`` for every snapshot."""
        return {t: list(self.edges_at(t)) for t in self.timestamps}

    def equals(self, other: "BaseEvolvingGraph") -> bool:
        """Structural equality: same directedness, timestamps and edge sets per snapshot."""
        if self.is_directed != other.is_directed:
            return False
        if list(self.timestamps) != list(other.timestamps):
            return False
        for t in self.timestamps:
            mine = {self._canonical_edge(u, v) for u, v in self.edges_at(t)}
            theirs = {other._canonical_edge(u, v) for u, v in other.edges_at(t)}
            if mine != theirs:
                return False
        return True

    def _canonical_edge(self, u: Node, v: Node) -> EdgeTuple:
        if self.is_directed:
            return (u, v)
        return (u, v) if repr(u) <= repr(v) else (v, u)
