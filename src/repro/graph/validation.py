"""Validation utilities for evolving graphs and temporal paths.

These checks back the structural invariants the paper relies on:

* timestamps are distinct and totally ordered (Definition 1),
* activeness is consistent with the edge sets (Definition 3),
* temporal paths visit only active nodes, respect time ordering, and take
  steps that are either static edges or causal edges (Definition 4),
* per-snapshot acyclicity, which drives the nilpotence result (Lemma 1).
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import GraphError, InvalidTemporalPathError
from repro.graph.base import BaseEvolvingGraph, TemporalNodeTuple

__all__ = [
    "validate_evolving_graph",
    "validate_temporal_path",
    "is_temporal_path",
    "snapshot_is_acyclic",
    "all_snapshots_acyclic",
]


def validate_evolving_graph(graph: BaseEvolvingGraph) -> None:
    """Raise :class:`GraphError` when structural invariants are violated."""
    times = list(graph.timestamps)
    if len(times) != len(set(times)):
        raise GraphError("timestamps must be distinct")
    if times != sorted(times):
        raise GraphError("timestamps must be sorted increasingly")
    for t in times:
        active = graph.active_nodes_at(t)
        incident: set = set()
        for u, v in graph.edges_at(t):
            if u != v:
                incident.add(u)
                incident.add(v)
        if active != incident:
            raise GraphError(
                f"active-node bookkeeping inconsistent at time {t!r}: "
                f"{sorted(map(repr, active ^ incident))}"
            )


def is_temporal_path(
    graph: BaseEvolvingGraph, path: Sequence[TemporalNodeTuple]
) -> bool:
    """Whether ``path`` is a valid temporal path on ``graph`` (Definition 4)."""
    try:
        validate_temporal_path(graph, path)
    except InvalidTemporalPathError:
        return False
    return True


def validate_temporal_path(
    graph: BaseEvolvingGraph, path: Sequence[TemporalNodeTuple]
) -> None:
    """Raise :class:`InvalidTemporalPathError` unless ``path`` is a temporal path.

    The empty sequence is a valid (trivial) temporal path, per the remark
    after Definition 4.  A single temporal node is a valid path of length 1
    when it is active.  Longer paths must consist of consecutive steps that
    are either a static edge within one snapshot or a causal edge between two
    active appearances of the same node, moving forward in time.
    """
    if len(path) == 0:
        return
    for v, t in path:
        if not graph.has_timestamp(t):
            raise InvalidTemporalPathError(
                f"temporal node ({v!r}, {t!r}) references unknown timestamp {t!r}"
            )
        if not graph.is_active(v, t):
            raise InvalidTemporalPathError(
                f"temporal node ({v!r}, {t!r}) is not active; temporal paths "
                "may only traverse active nodes"
            )
    for (v1, t1), (v2, t2) in zip(path, path[1:]):
        if t2 < t1:
            raise InvalidTemporalPathError(f"time ordering violated: {t2!r} < {t1!r}")
        if v1 == v2:
            if t1 == t2:
                raise InvalidTemporalPathError(
                    f"repeated temporal node ({v1!r}, {t1!r})"
                )
            # causal edge (v, t1) -> (v, t2): both endpoints active, t1 < t2 — already checked.
        else:
            if t1 != t2:
                raise InvalidTemporalPathError(
                    f"step ({v1!r}, {t1!r}) -> ({v2!r}, {t2!r}) changes both node and "
                    "time; temporal paths may change only one per step"
                )
            if not graph.has_edge(v1, v2, t1):
                raise InvalidTemporalPathError(
                    f"no static edge {v1!r} -> {v2!r} at time {t1!r}"
                )


def snapshot_is_acyclic(graph: BaseEvolvingGraph, time) -> bool:
    """Whether the snapshot at ``time`` is a DAG (ignoring edge direction it is never acyclic
    for undirected graphs with at least one edge, so undirected graphs only count self-loop-free
    forests as acyclic when treated as one-sided storage).

    Uses Kahn's algorithm on the directed snapshot.
    """
    from collections import deque

    succ: dict = {}
    indeg: dict = {}
    for u, v in graph.edges_at(time):
        succ.setdefault(u, []).append(v)
        indeg[v] = indeg.get(v, 0) + 1
        indeg.setdefault(u, indeg.get(u, 0))
        if u == v:
            return False
    queue = deque(v for v, d in indeg.items() if d == 0)
    seen = 0
    while queue:
        u = queue.popleft()
        seen += 1
        for w in succ.get(u, ()):
            indeg[w] -= 1
            if indeg[w] == 0:
                queue.append(w)
    return seen == len(indeg)


def all_snapshots_acyclic(graph: BaseEvolvingGraph) -> bool:
    """Whether every snapshot of the evolving graph is acyclic (hypothesis of Lemma 1)."""
    return all(snapshot_is_acyclic(graph, t) for t in graph.timestamps)
