"""Matrix-sequence representation of an evolving graph.

Section III of the paper represents an evolving graph ``G_n`` by the sequence
of per-snapshot one-sided adjacency matrices ``A_n = <A[1], ..., A[n]>`` over
a common node universe.  This module provides that representation backed by
``scipy.sparse`` CSR matrices, which is the natural input for the algebraic
BFS (Algorithm 2), the naive path-sum baseline of Eq. (2), and the blocked
matrix ``M_n`` / ``A_n`` construction of Section III-C.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import RepresentationError, TimestampNotFoundError
from repro.graph.base import (
    BaseEvolvingGraph,
    EdgeTuple,
    Node,
    TemporalEdgeTuple,
    Time,
)

__all__ = ["MatrixSequenceEvolvingGraph"]


class MatrixSequenceEvolvingGraph(BaseEvolvingGraph):
    """Evolving graph stored as a sequence of sparse adjacency matrices.

    All snapshots share a single node universe (the union of nodes over all
    times), so matrix ``k`` is an ``N x N`` CSR matrix where ``N`` is the size
    of the universe.  Entry ``(i, j)`` is 1 when the edge ``i -> j`` exists at
    the ``k``-th timestamp, exactly as in Eq. (1) of the paper.

    Parameters
    ----------
    matrices:
        Sequence of square sparse/dense matrices, one per timestamp.
    timestamps:
        Time labels, one per matrix, strictly increasing.
    node_labels:
        Optional labels for the matrix rows/columns; defaults to ``0..N-1``.
    directed:
        When ``False``, each matrix is interpreted as one-sided storage of an
        undirected snapshot (an edge is traversable both ways even when only
        one orientation is stored), mirroring the remark after Lemma 1.

    Notes
    -----
    The stored matrices are normalized copies with *read-only* buffers:
    :meth:`matrix_at` / :meth:`matrices` return them directly, and an
    in-place edit would bypass
    :attr:`~repro.graph.base.BaseEvolvingGraph.mutation_version` and leave
    stale compiled kernels in the engine cache.  Mutating a returned matrix
    therefore raises ``ValueError``; grow the graph with :meth:`add_snapshot`
    or rebuild it instead.
    """

    def __init__(
        self,
        matrices: Sequence[sp.spmatrix | np.ndarray],
        timestamps: Sequence[Time],
        *,
        node_labels: Sequence[Node] | None = None,
        directed: bool = True,
    ) -> None:
        if len(matrices) != len(timestamps):
            raise RepresentationError(
                f"got {len(matrices)} matrices but {len(timestamps)} timestamps"
            )
        if len(timestamps) != len(set(timestamps)):
            raise RepresentationError("timestamps must be distinct")
        if list(timestamps) != sorted(timestamps):
            raise RepresentationError("timestamps must be sorted increasingly")
        if not matrices:
            raise RepresentationError("at least one snapshot matrix is required")

        csr_list: list[sp.csr_matrix] = []
        n = None
        for m in matrices:
            csr = self._normalize_matrix(m, n)
            if n is None:
                n = csr.shape[0]
            csr_list.append(csr)

        self._matrices = csr_list
        self._timestamps = list(timestamps)
        self._time_index = {t: k for k, t in enumerate(self._timestamps)}
        self._directed = bool(directed)
        self._n = int(n)

        if node_labels is None:
            node_labels = list(range(self._n))
        if len(node_labels) != self._n:
            raise RepresentationError(
                f"expected {self._n} node labels, got {len(node_labels)}"
            )
        self._node_labels = list(node_labels)
        self._node_index: Mapping[Node, int] = {
            v: i for i, v in enumerate(self._node_labels)
        }
        if len(self._node_index) != self._n:
            raise RepresentationError("node labels must be distinct")

        # cache transposes (CSC views) for in-neighbour queries
        self._matrices_T = [m.T.tocsr() for m in self._matrices]

    @staticmethod
    def _normalize_matrix(
        matrix: sp.spmatrix | np.ndarray, n: int | None
    ) -> sp.csr_matrix:
        """Validate and normalize one snapshot matrix to 0/1 CSR, no diagonal."""
        csr = sp.csr_matrix(matrix)
        if csr.shape[0] != csr.shape[1]:
            raise RepresentationError(
                f"adjacency matrices must be square, got {csr.shape}"
            )
        if n is not None and csr.shape[0] != n:
            raise RepresentationError(
                f"all adjacency matrices must share the same shape, got {csr.shape} vs {n}"
            )
        csr = csr.astype(np.int64)
        csr.setdiag(0)  # self-loops never create activeness (Definition 3)
        csr.eliminate_zeros()
        csr.data[:] = 1  # 0/1 adjacency per Eq. (1)
        # Freeze the buffers: matrix_at()/matrices() hand out these objects,
        # and a silent in-place edit would bypass mutation_version and serve
        # stale compiled kernels.  Mutating them now raises; use
        # add_snapshot() or rebuild the graph instead.
        csr.data.setflags(write=False)
        csr.indices.setflags(write=False)
        csr.indptr.setflags(write=False)
        return csr

    def add_snapshot(self, time: Time, matrix: sp.spmatrix | np.ndarray) -> None:
        """Insert a new snapshot matrix labelled ``time`` (kept in time order).

        The matrix must share the node universe (same shape) as the existing
        snapshots.  Bumps
        :attr:`~repro.graph.base.BaseEvolvingGraph.mutation_version`, so
        cached compiled kernels are rebuilt exactly when needed.
        """
        if time in self._time_index:
            raise RepresentationError(f"snapshot for timestamp {time!r} already exists")
        csr = self._normalize_matrix(matrix, self._n)
        pos = bisect.bisect_left(self._timestamps, time)
        self._timestamps.insert(pos, time)
        self._matrices.insert(pos, csr)
        self._matrices_T.insert(pos, csr.T.tocsr())
        self._time_index = {t: k for k, t in enumerate(self._timestamps)}
        self._bump_mutation_version()

    # ------------------------------------------------------------------ #
    # constructors                                                        #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[TemporalEdgeTuple],
        *,
        directed: bool = True,
        node_labels: Sequence[Node] | None = None,
        timestamps: Sequence[Time] | None = None,
    ) -> "MatrixSequenceEvolvingGraph":
        """Build the matrix sequence from ``(u, v, t)`` triples."""
        triples = list(edges)
        times = sorted(set(t for _, _, t in triples) | set(timestamps or ()))
        if not times:
            raise RepresentationError(
                "cannot build a matrix sequence without timestamps"
            )
        if node_labels is None:
            labels = sorted(
                {u for u, _, _ in triples} | {v for _, v, _ in triples}, key=repr
            )
        else:
            labels = list(node_labels)
        index = {v: i for i, v in enumerate(labels)}
        n = len(labels)
        mats = []
        for t in times:
            rows = [index[u] for u, v, tt in triples if tt == t]
            cols = [index[v] for u, v, tt in triples if tt == t]
            data = np.ones(len(rows), dtype=np.int64)
            mats.append(sp.csr_matrix((data, (rows, cols)), shape=(n, n)))
        return cls(mats, times, node_labels=labels, directed=directed)

    # ------------------------------------------------------------------ #
    # matrix accessors                                                    #
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Size of the shared node universe ``N``."""
        return self._n

    @property
    def node_labels(self) -> list[Node]:
        """Node labels indexing matrix rows/columns."""
        return list(self._node_labels)

    def node_index(self, node: Node) -> int:
        """Row/column index of ``node`` in every snapshot matrix."""
        return self._node_index[node]

    def matrix_at(self, time: Time) -> sp.csr_matrix:
        """The one-sided adjacency matrix ``A[t]`` (CSR, 0/1 entries)."""
        return self._matrices[self._time_code(time)]

    def matrices(self) -> list[sp.csr_matrix]:
        """All snapshot matrices in time order."""
        return list(self._matrices)

    def symmetrized_matrix_at(self, time: Time) -> sp.csr_matrix:
        """``A[t]`` for directed graphs, ``A[t] + A[t]^T`` (0/1) for undirected ones."""
        a = self.matrix_at(time)
        if self._directed:
            return a
        s = a + a.T
        s.data[:] = 1
        return s.tocsr()

    def _time_code(self, time: Time) -> int:
        try:
            return self._time_index[time]
        except KeyError as exc:
            raise TimestampNotFoundError(time) from exc

    # ------------------------------------------------------------------ #
    # BaseEvolvingGraph primitives                                        #
    # ------------------------------------------------------------------ #

    @property
    def is_directed(self) -> bool:
        return self._directed

    @property
    def timestamps(self) -> Sequence[Time]:
        return tuple(self._timestamps)

    def edges_at(self, time: Time) -> Iterator[EdgeTuple]:
        mat = self.matrix_at(time).tocoo()
        labels = self._node_labels
        for i, j in zip(mat.row, mat.col):
            yield (labels[i], labels[j])

    @staticmethod
    def _row_indices(mat: sp.csr_matrix, idx: int) -> np.ndarray:
        """Column indices stored in row ``idx`` of a CSR matrix."""
        return mat.indices[mat.indptr[idx] : mat.indptr[idx + 1]]

    def out_neighbors_at(self, node: Node, time: Time) -> Iterator[Node]:
        idx = self._node_index.get(node)
        if idx is None:
            return iter(())
        k = self._time_code(time)
        labels = self._node_labels
        row = self._row_indices(self._matrices[k], idx)
        out = [labels[j] for j in row]
        if not self._directed:
            row_t = self._row_indices(self._matrices_T[k], idx)
            out.extend(labels[j] for j in row_t if labels[j] not in out)
        return iter(out)

    def in_neighbors_at(self, node: Node, time: Time) -> Iterator[Node]:
        idx = self._node_index.get(node)
        if idx is None:
            return iter(())
        k = self._time_code(time)
        labels = self._node_labels
        row_t = self._row_indices(self._matrices_T[k], idx)
        out = [labels[j] for j in row_t]
        if not self._directed:
            row = self._row_indices(self._matrices[k], idx)
            out.extend(labels[j] for j in row if labels[j] not in out)
        return iter(out)

    # ------------------------------------------------------------------ #
    # fast overrides                                                      #
    # ------------------------------------------------------------------ #

    def num_static_edges(self) -> int:
        return int(sum(m.nnz for m in self._matrices))

    def nodes(self) -> set[Node]:
        present: set[Node] = set()
        labels = self._node_labels
        for k in range(len(self._matrices)):
            coo = self._matrices[k].tocoo()
            present.update(labels[i] for i in coo.row)
            present.update(labels[j] for j in coo.col)
        return present

    def active_nodes_at(self, time: Time) -> set[Node]:
        k = self._time_code(time)
        m = self._matrices[k]
        out_deg = np.asarray(m.sum(axis=1)).ravel()
        in_deg = np.asarray(m.sum(axis=0)).ravel()
        active = np.nonzero((out_deg + in_deg) > 0)[0]
        labels = self._node_labels
        return {labels[i] for i in active}

    def active_mask_at(self, time: Time) -> np.ndarray:
        """Boolean mask of length ``N`` marking active node indices at ``time``."""
        k = self._time_code(time)
        m = self._matrices[k]
        out_deg = np.asarray(m.sum(axis=1)).ravel()
        in_deg = np.asarray(m.sum(axis=0)).ravel()
        return (out_deg + in_deg) > 0

    # ------------------------------------------------------------------ #
    # conversion                                                          #
    # ------------------------------------------------------------------ #

    def to_triples(self) -> list[TemporalEdgeTuple]:
        """Materialise the graph as ``(u, v, t)`` label triples."""
        out: list[TemporalEdgeTuple] = []
        for t in self._timestamps:
            out.extend((u, v, t) for u, v in self.edges_at(t))
        return out
