"""NumPy-backed temporal edge-list representation.

Stores an evolving graph as three parallel integer arrays (source code,
destination code, time code) plus lookup tables mapping codes back to the
original node / timestamp labels.  This columnar layout follows the
vectorisation guidance of the HPC guides: bulk operations (snapshot slicing,
per-time CSR assembly, degree counting) become NumPy index operations instead
of Python loops, and the arrays can be handed to the sparse kernels in
:mod:`repro.linalg` without copying.

The representation is immutable after construction; use
:class:`repro.graph.adjacency_list.AdjacencyListEvolvingGraph` for incremental
updates and convert when a bulk/array view is needed.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import RepresentationError, TimestampNotFoundError
from repro.graph.base import (
    BaseEvolvingGraph,
    EdgeTuple,
    Node,
    TemporalEdgeTuple,
    Time,
)

__all__ = ["TemporalEdgeList"]


class TemporalEdgeList(BaseEvolvingGraph):
    """Immutable columnar evolving graph built from ``(u, v, t)`` triples.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v, t)`` triples.  Duplicate triples are dropped.
    directed:
        Whether edges are directed.
    timestamps:
        Optional explicit timestamp universe; timestamps not appearing in any
        edge become empty snapshots.

    Notes
    -----
    Instances are frozen after construction, so
    :attr:`~repro.graph.base.BaseEvolvingGraph.mutation_version` is a
    constant ``0`` and compiled kernels for this representation never go
    stale.
    """

    def __init__(
        self,
        edges: Iterable[TemporalEdgeTuple],
        *,
        directed: bool = True,
        timestamps: Sequence[Time] | None = None,
    ) -> None:
        self._directed = bool(directed)

        triples = list(edges)
        for item in triples:
            if len(item) != 3:
                raise RepresentationError(
                    f"temporal edges must be (u, v, t) triples, got {item!r}"
                )

        node_labels: list[Node] = []
        node_index: dict[Node, int] = {}
        time_labels: list[Time] = sorted(
            set(t for _, _, t in triples) | set(timestamps or ())
        )
        time_index: dict[Time, int] = {t: i for i, t in enumerate(time_labels)}

        def _node_code(v: Node) -> int:
            code = node_index.get(v)
            if code is None:
                code = len(node_labels)
                node_index[v] = code
                node_labels.append(v)
            return code

        seen: set[tuple[int, int, int]] = set()
        src: list[int] = []
        dst: list[int] = []
        tms: list[int] = []
        for u, v, t in triples:
            cu, cv, ct = _node_code(u), _node_code(v), time_index[t]
            if not self._directed and cu > cv:
                key = (cv, cu, ct)
            else:
                key = (cu, cv, ct)
            if key in seen:
                continue
            seen.add(key)
            src.append(cu)
            dst.append(cv)
            tms.append(ct)

        self._node_labels: list[Node] = node_labels
        self._node_index: dict[Node, int] = node_index
        self._time_labels: list[Time] = time_labels
        self._time_index: dict[Time, int] = time_index

        src_arr = np.asarray(src, dtype=np.int64)
        dst_arr = np.asarray(dst, dtype=np.int64)
        tms_arr = np.asarray(tms, dtype=np.int64)
        # sort by (time, src, dst) so per-snapshot slices are contiguous
        order = np.lexsort((dst_arr, src_arr, tms_arr))
        self._src = np.ascontiguousarray(src_arr[order])
        self._dst = np.ascontiguousarray(dst_arr[order])
        self._tms = np.ascontiguousarray(tms_arr[order])
        # snapshot boundaries: _time_starts[k] .. _time_starts[k+1] rows belong to time code k
        self._time_starts = np.searchsorted(self._tms, np.arange(len(time_labels) + 1))

        self._active_codes_per_time: list[np.ndarray] = []
        for k in range(len(time_labels)):
            lo, hi = self._time_starts[k], self._time_starts[k + 1]
            s, d = self._src[lo:hi], self._dst[lo:hi]
            mask = s != d
            if hi > lo:
                codes = np.unique(np.concatenate([s[mask], d[mask]]))
            else:
                codes = np.empty(0, dtype=np.int64)
            self._active_codes_per_time.append(codes)

    # ------------------------------------------------------------------ #
    # array accessors                                                     #
    # ------------------------------------------------------------------ #

    @property
    def source_codes(self) -> np.ndarray:
        """Integer source-node codes, sorted by (time, source, destination)."""
        return self._src

    @property
    def destination_codes(self) -> np.ndarray:
        """Integer destination-node codes, aligned with :attr:`source_codes`."""
        return self._dst

    @property
    def time_codes(self) -> np.ndarray:
        """Integer time codes, aligned with :attr:`source_codes`."""
        return self._tms

    @property
    def node_labels(self) -> list[Node]:
        """Node labels, indexable by node code."""
        return list(self._node_labels)

    @property
    def time_labels(self) -> list[Time]:
        """Timestamp labels, indexable by time code."""
        return list(self._time_labels)

    def node_code(self, node: Node) -> int:
        """Integer code of ``node`` (raises ``KeyError`` if absent)."""
        return self._node_index[node]

    def time_code(self, time: Time) -> int:
        """Integer code of ``time`` (raises :class:`TimestampNotFoundError` if absent)."""
        try:
            return self._time_index[time]
        except KeyError as exc:
            raise TimestampNotFoundError(time) from exc

    def num_nodes(self) -> int:
        """Number of distinct node labels."""
        return len(self._node_labels)

    def snapshot_arrays(self, time: Time) -> tuple[np.ndarray, np.ndarray]:
        """``(sources, destinations)`` integer-code arrays for the snapshot at ``time``."""
        k = self.time_code(time)
        lo, hi = self._time_starts[k], self._time_starts[k + 1]
        return self._src[lo:hi], self._dst[lo:hi]

    # ------------------------------------------------------------------ #
    # BaseEvolvingGraph primitives                                        #
    # ------------------------------------------------------------------ #

    @property
    def is_directed(self) -> bool:
        return self._directed

    @property
    def timestamps(self) -> Sequence[Time]:
        return tuple(self._time_labels)

    def edges_at(self, time: Time) -> Iterator[EdgeTuple]:
        s, d = self.snapshot_arrays(time)
        labels = self._node_labels
        for i in range(len(s)):
            yield (labels[s[i]], labels[d[i]])

    def out_neighbors_at(self, node: Node, time: Time) -> Iterator[Node]:
        code = self._node_index.get(node)
        if code is None:
            return iter(())
        s, d = self.snapshot_arrays(time)
        labels = self._node_labels
        out = [labels[x] for x in d[s == code]]
        if not self._directed:
            out.extend(labels[x] for x in s[d == code] if x != code)
        return iter(out)

    def in_neighbors_at(self, node: Node, time: Time) -> Iterator[Node]:
        code = self._node_index.get(node)
        if code is None:
            return iter(())
        s, d = self.snapshot_arrays(time)
        labels = self._node_labels
        out = [labels[x] for x in s[d == code]]
        if not self._directed:
            out.extend(labels[x] for x in d[s == code] if x != code)
        return iter(out)

    # ------------------------------------------------------------------ #
    # fast overrides                                                      #
    # ------------------------------------------------------------------ #

    def num_static_edges(self) -> int:
        return int(self._src.shape[0])

    def nodes(self) -> set[Node]:
        return set(self._node_labels)

    def active_nodes_at(self, time: Time) -> set[Node]:
        k = self.time_code(time)
        labels = self._node_labels
        return {labels[c] for c in self._active_codes_per_time[k]}

    def is_active(self, node: Node, time: Time) -> bool:
        code = self._node_index.get(node)
        if code is None:
            return False
        k = self.time_code(time)
        codes = self._active_codes_per_time[k]
        idx = np.searchsorted(codes, code)
        return bool(idx < codes.shape[0] and codes[idx] == code)

    def active_times(self, node: Node) -> list[Time]:
        code = self._node_index.get(node)
        if code is None:
            return []
        out = []
        for k, codes in enumerate(self._active_codes_per_time):
            idx = np.searchsorted(codes, code)
            if idx < codes.shape[0] and codes[idx] == code:
                out.append(self._time_labels[k])
        return out

    # ------------------------------------------------------------------ #
    # conversion helpers                                                  #
    # ------------------------------------------------------------------ #

    def to_triples(self) -> list[TemporalEdgeTuple]:
        """Materialise the edge list back into ``(u, v, t)`` label triples."""
        labels, times = self._node_labels, self._time_labels
        return [
            (labels[self._src[i]], labels[self._dst[i]], times[self._tms[i]])
            for i in range(self._src.shape[0])
        ]

    @classmethod
    def from_arrays(
        cls,
        sources: np.ndarray,
        destinations: np.ndarray,
        times: np.ndarray,
        *,
        directed: bool = True,
    ) -> "TemporalEdgeList":
        """Build directly from integer arrays, using the integers as labels."""
        sources = np.asarray(sources)
        destinations = np.asarray(destinations)
        times = np.asarray(times)
        if not (sources.shape == destinations.shape == times.shape):
            raise RepresentationError(
                "source/destination/time arrays must have equal shape"
            )
        triples = zip(sources.tolist(), destinations.tolist(), times.tolist())
        return cls(triples, directed=directed)
