"""Evolving-graph data structures (the substrate of the paper's Definition 1).

The subpackage offers four interchangeable representations plus a static
graph used by the Theorem-1 expansion:

* :class:`~repro.graph.adjacency_list.AdjacencyListEvolvingGraph` — mutable,
  hash-map based, the analogue of ``IntEvolvingGraph`` in EvolvingGraphs.jl;
  the representation Algorithm 1 and the Figure-5 experiment use.
* :class:`~repro.graph.edge_list.TemporalEdgeList` — immutable, columnar,
  NumPy-backed ``(u, v, t)`` arrays for bulk processing.
* :class:`~repro.graph.adjacency_matrix.MatrixSequenceEvolvingGraph` — the
  sequence of per-snapshot sparse adjacency matrices of Section III.
* :class:`~repro.graph.snapshots.SnapshotSequenceEvolvingGraph` — a literal
  list of static snapshots per Definition 1.
* :class:`~repro.graph.static_graph.StaticGraph` — ordinary static graph with
  a textbook BFS (the oracle of Theorem 1).

Every representation carries a monotonically increasing ``mutation_version``
and compiles into the shared immutable
:class:`~repro.graph.compiled.CompiledTemporalGraph` artifact (node index,
per-snapshot CSR operator stacks, activeness mask) that the engine and the
vectorized analytics execute over; see :func:`repro.engine.get_compiled` for
the version-exact cache.
"""

from repro.graph.adjacency_list import AdjacencyListEvolvingGraph
from repro.graph.adjacency_matrix import MatrixSequenceEvolvingGraph
from repro.graph.base import BaseEvolvingGraph
from repro.graph.compiled import CompiledTemporalGraph
from repro.graph.converters import (
    to_adjacency_list,
    to_edge_list,
    to_matrix_sequence,
    to_snapshot_sequence,
    to_triples,
)
from repro.graph.edge_list import TemporalEdgeList
from repro.graph.sharded import ShardedTemporalGraph
from repro.graph.snapshots import SnapshotSequenceEvolvingGraph
from repro.graph.static_graph import StaticGraph, static_bfs
from repro.graph.validation import (
    all_snapshots_acyclic,
    is_temporal_path,
    snapshot_is_acyclic,
    validate_evolving_graph,
    validate_temporal_path,
)

__all__ = [
    "BaseEvolvingGraph",
    "CompiledTemporalGraph",
    "ShardedTemporalGraph",
    "AdjacencyListEvolvingGraph",
    "TemporalEdgeList",
    "MatrixSequenceEvolvingGraph",
    "SnapshotSequenceEvolvingGraph",
    "StaticGraph",
    "static_bfs",
    "to_triples",
    "to_adjacency_list",
    "to_edge_list",
    "to_matrix_sequence",
    "to_snapshot_sequence",
    "validate_evolving_graph",
    "validate_temporal_path",
    "is_temporal_path",
    "snapshot_is_acyclic",
    "all_snapshots_acyclic",
]
