"""Conversions between evolving-graph representations.

Every representation in :mod:`repro.graph` can express the same evolving
graph; the right one depends on the workload (incremental updates, columnar
bulk processing, algebraic formulations, literal per-snapshot processing).
The converters below go through the common ``(u, v, t)`` triple form, which
keeps the number of conversion paths linear in the number of representations
while preserving directedness and the timestamp universe (including empty
snapshots).
"""

from __future__ import annotations

from typing import Sequence

from repro.graph.adjacency_list import AdjacencyListEvolvingGraph
from repro.graph.adjacency_matrix import MatrixSequenceEvolvingGraph
from repro.graph.base import BaseEvolvingGraph, Node, TemporalEdgeTuple
from repro.graph.edge_list import TemporalEdgeList
from repro.graph.snapshots import SnapshotSequenceEvolvingGraph

__all__ = [
    "to_triples",
    "to_adjacency_list",
    "to_edge_list",
    "to_matrix_sequence",
    "to_snapshot_sequence",
]


def to_triples(graph: BaseEvolvingGraph) -> list[TemporalEdgeTuple]:
    """Extract all ``(u, v, t)`` temporal edges from any representation."""
    return list(graph.temporal_edges())


def to_adjacency_list(graph: BaseEvolvingGraph) -> AdjacencyListEvolvingGraph:
    """Convert any evolving graph to the adjacency-list representation."""
    if isinstance(graph, AdjacencyListEvolvingGraph):
        return graph.copy()
    return AdjacencyListEvolvingGraph(
        to_triples(graph),
        directed=graph.is_directed,
        timestamps=graph.timestamps,
    )


def to_edge_list(graph: BaseEvolvingGraph) -> TemporalEdgeList:
    """Convert any evolving graph to the NumPy-backed temporal edge list."""
    return TemporalEdgeList(
        to_triples(graph),
        directed=graph.is_directed,
        timestamps=graph.timestamps,
    )


def to_matrix_sequence(
    graph: BaseEvolvingGraph,
    *,
    node_labels: Sequence[Node] | None = None,
) -> MatrixSequenceEvolvingGraph:
    """Convert any evolving graph to the sparse matrix-sequence representation.

    ``node_labels`` fixes the row/column ordering of the matrices; when
    omitted, nodes are ordered by their ``repr`` for determinism.
    """
    triples = to_triples(graph)
    if node_labels is None:
        node_labels = sorted(graph.nodes(), key=repr)
    return MatrixSequenceEvolvingGraph.from_edges(
        triples,
        directed=graph.is_directed,
        node_labels=node_labels,
        timestamps=graph.timestamps,
    )


def to_snapshot_sequence(graph: BaseEvolvingGraph) -> SnapshotSequenceEvolvingGraph:
    """Convert any evolving graph to the snapshot-sequence representation."""
    out = SnapshotSequenceEvolvingGraph(directed=graph.is_directed)
    for t in graph.timestamps:
        snap = out.add_snapshot(t)
        for u, v in graph.edges_at(t):
            snap.add_edge(u, v)
    return out
