"""Adjacency-list representation of an evolving graph.

This is the Python analogue of ``IntEvolvingGraph`` from EvolvingGraphs.jl,
the representation the paper's Algorithm 1 and the Figure-5 experiment use.
Each snapshot is stored as a pair of hash maps ``node -> list of neighbours``
(forward and reverse), and per-node active-time lists are maintained
incrementally so that forward-neighbour queries — the inner loop of the BFS —
run in time proportional to their output size.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, Sequence

from repro.exceptions import GraphError, TimestampNotFoundError
from repro.graph.base import (
    BaseEvolvingGraph,
    EdgeTuple,
    Node,
    TemporalEdgeTuple,
    TemporalNodeTuple,
    Time,
)

__all__ = ["AdjacencyListEvolvingGraph"]

#: Mutation-journal size cap.  Trimming only ever drops entries a delta
#: consumer has already consumed (see ``_journal_append``), so a single
#: batch larger than the cap stays complete until the next recompile reads
#: it — the journal grows past the cap instead of dropping entries the next
#: delta compilation still needs.
_JOURNAL_LIMIT = 65536


class AdjacencyListEvolvingGraph(BaseEvolvingGraph):
    """Evolving graph stored as per-snapshot adjacency lists.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v, t)`` temporal edges to insert.
    directed:
        Whether edges are directed (default ``True``).  For undirected graphs
        every inserted edge is traversable in both directions, matching the
        paper's treatment in the proof of Theorem 1.

    Examples
    --------
    >>> g = AdjacencyListEvolvingGraph([(1, 2, "t1"), (1, 3, "t2"), (2, 3, "t3")],
    ...                                timestamps=["t1", "t2", "t3"])
    >>> g.forward_neighbors(1, "t1")
    [(2, 't1'), (1, 't2')]
    """

    def __init__(
        self,
        edges: Iterable[TemporalEdgeTuple] | None = None,
        *,
        directed: bool = True,
        timestamps: Sequence[Time] | None = None,
    ) -> None:
        self._directed = bool(directed)
        # snapshot adjacency: time -> node -> list of neighbours
        self._succ: dict[Time, dict[Node, list[Node]]] = {}
        self._pred: dict[Time, dict[Node, list[Node]]] = {}
        # per-snapshot edge count and edge set for O(1) membership / dedup
        self._edge_sets: dict[Time, set[EdgeTuple]] = {}
        # sorted list of timestamps (may include empty snapshots registered explicitly)
        self._timestamps: list[Time] = []
        # node -> sorted list of timestamps at which the node is *active*
        self._active_times: dict[Node, list[Time]] = {}
        # time -> mutation_version at the last edit touching that snapshot
        # (delta compilation diffs these stamps to find dirty snapshots)
        self._snapshot_versions: dict[Time, int] = {}
        # signed mutation journal: parallel (version, edge, sign) logs of
        # recent add_edge (+1) and remove_edge (-1) calls, complete for
        # versions > _journal_floor.  Lets delta compilation patch a dirty
        # snapshot's operator with one sparse addition and one sparse
        # subtraction (see edge_mutations_since).  _journal_consumed is the
        # newest version a delta consumer has read through; trimming never
        # drops entries beyond it.
        self._journal_versions: list[int] = []
        self._journal_edges: list[TemporalEdgeTuple] = []
        self._journal_signs: list[int] = []
        self._journal_floor = 0
        self._journal_consumed = 0

        if timestamps is not None:
            for t in timestamps:
                self.add_timestamp(t)
        if edges is not None:
            self.add_edges_from(edges)

    # ------------------------------------------------------------------ #
    # construction                                                       #
    # ------------------------------------------------------------------ #

    def add_timestamp(self, time: Time) -> None:
        """Register a (possibly empty) snapshot labelled ``time``."""
        if time in self._succ:
            return
        self._succ[time] = {}
        self._pred[time] = {}
        self._edge_sets[time] = set()
        bisect.insort(self._timestamps, time)
        self._bump_mutation_version()
        self._snapshot_versions[time] = self._mutation_version

    def add_edge(self, u: Node, v: Node, time: Time) -> bool:
        """Insert the edge ``u -> v`` into the snapshot at ``time``.

        Returns ``True`` when the edge was new, ``False`` when it was already
        present (duplicates are ignored so the representation stays a simple
        graph per snapshot, as assumed by the 0/1 adjacency matrices of
        Section III).
        """
        self.add_timestamp(time)
        edge = self._canonical_edge(u, v)
        edge_set = self._edge_sets[time]
        if edge in edge_set:
            return False
        edge_set.add(edge)
        self._succ[time].setdefault(u, []).append(v)
        self._pred[time].setdefault(v, []).append(u)
        if not self._directed:
            self._succ[time].setdefault(v, []).append(u)
            self._pred[time].setdefault(u, []).append(v)
        if u != v:
            self._mark_active(u, time)
            self._mark_active(v, time)
        self._bump_mutation_version()
        self._snapshot_versions[time] = self._mutation_version
        self._journal_append((u, v, time), 1)
        return True

    def remove_edge(self, u: Node, v: Node, time: Time) -> bool:
        """Remove the edge ``u -> v`` from the snapshot at ``time``.

        Returns ``True`` when an edge was removed, ``False`` when it was not
        present (orientation is ignored for undirected graphs).  Activeness
        bookkeeping is updated: an endpoint with no remaining edge to another
        node at ``time`` stops being active there (Definition 3).  The
        mutation bumps :attr:`~repro.graph.base.BaseEvolvingGraph.mutation_version`,
        so cached kernels are rebuilt even though the edge/timestamp counts
        may be unchanged after a paired ``add_edge``.
        """
        edge_set = self._edge_sets.get(time)
        if edge_set is None:
            raise TimestampNotFoundError(time)
        edge = self._canonical_edge(u, v)
        if edge not in edge_set:
            return False
        edge_set.discard(edge)
        a, b = edge
        # mirror add_edge exactly (undirected inserts store both directions,
        # self-loops included)
        self._succ[time][a].remove(b)
        self._pred[time][b].remove(a)
        if not self._directed:
            self._succ[time][b].remove(a)
            self._pred[time][a].remove(b)
        for w in {a, b}:
            if not self._has_incident_edge(w, time):
                times = self._active_times.get(w)
                if times:
                    idx = bisect.bisect_left(times, time)
                    if idx < len(times) and times[idx] == time:
                        times.pop(idx)
        self._bump_mutation_version()
        self._snapshot_versions[time] = self._mutation_version
        self._journal_append((u, v, time), -1)
        return True

    def _journal_append(self, edge: TemporalEdgeTuple, sign: int) -> None:
        """Log one signed mutation, trimming only already-consumed entries.

        The trim respects ``_journal_consumed``: entries no delta consumer
        has read yet are never dropped, so a single batch larger than
        ``_JOURNAL_LIMIT`` stays journal-complete until the next recompile
        consumes it (the journal grows past the cap in the meantime).
        """
        self._journal_versions.append(self._mutation_version)
        self._journal_edges.append(edge)
        self._journal_signs.append(sign)
        if len(self._journal_versions) > _JOURNAL_LIMIT:
            cut = bisect.bisect_right(self._journal_versions, self._journal_consumed)
            if cut:
                self._journal_floor = self._journal_versions[cut - 1]
                del self._journal_versions[:cut]
                del self._journal_edges[:cut]
                del self._journal_signs[:cut]

    def _has_incident_edge(self, node: Node, time: Time) -> bool:
        """Whether ``node`` still touches an edge to *another* node at ``time``."""
        for w in self._succ[time].get(node, ()):
            if w != node:
                return True
        for w in self._pred[time].get(node, ()):
            if w != node:
                return True
        return False

    def add_edges_from(self, edges: Iterable[TemporalEdgeTuple]) -> int:
        """Insert many ``(u, v, t)`` edges; return the number actually added."""
        added = 0
        for item in edges:
            try:
                u, v, t = item
            except (TypeError, ValueError) as exc:
                raise GraphError(
                    f"temporal edges must be (u, v, t) triples, got {item!r}"
                ) from exc
            added += self.add_edge(u, v, t)
        return added

    def remove_edges_from(self, edges: Iterable[TemporalEdgeTuple]) -> int:
        """Remove many ``(u, v, t)`` edges; return the number actually removed.

        Absent edges are skipped (``remove_edge`` semantics), and every
        effective removal lands in the signed mutation journal, so a removal
        batch stays on the O(batch) delta-compilation path.
        """
        removed = 0
        for item in edges:
            try:
                u, v, t = item
            except (TypeError, ValueError) as exc:
                raise GraphError(
                    f"temporal edges must be (u, v, t) triples, got {item!r}"
                ) from exc
            removed += self.remove_edge(u, v, t)
        return removed

    def _mark_active(self, node: Node, time: Time) -> None:
        times = self._active_times.setdefault(node, [])
        idx = bisect.bisect_left(times, time)
        if idx >= len(times) or times[idx] != time:
            times.insert(idx, time)

    # ------------------------------------------------------------------ #
    # primitives required by BaseEvolvingGraph                           #
    # ------------------------------------------------------------------ #

    @property
    def is_directed(self) -> bool:
        return self._directed

    @property
    def timestamps(self) -> Sequence[Time]:
        return tuple(self._timestamps)

    def edges_at(self, time: Time) -> Iterator[EdgeTuple]:
        if time not in self._edge_sets:
            raise TimestampNotFoundError(time)
        return iter(sorted(self._edge_sets[time], key=repr))

    def out_neighbors_at(self, node: Node, time: Time) -> Iterator[Node]:
        snapshot = self._succ.get(time)
        if snapshot is None:
            raise TimestampNotFoundError(time)
        return iter(snapshot.get(node, ()))

    def in_neighbors_at(self, node: Node, time: Time) -> Iterator[Node]:
        snapshot = self._pred.get(time)
        if snapshot is None:
            raise TimestampNotFoundError(time)
        return iter(snapshot.get(node, ()))

    # ------------------------------------------------------------------ #
    # fast overrides of derived queries                                  #
    # ------------------------------------------------------------------ #

    def has_timestamp(self, time: Time) -> bool:
        return time in self._succ

    def snapshot_versions(self) -> dict[Time, int]:
        """Per-snapshot last-modified stamps (delta-compilation dirty tracking)."""
        return dict(self._snapshot_versions)

    def edge_insertions_since(self, version: int) -> list[TemporalEdgeTuple] | None:
        """Edges inserted since ``version`` (``None`` when the journal can't tell).

        Pure-insertion fast path: a non-``None`` answer certifies that *only*
        insertions happened in the window, so consumers may patch forward
        without removal handling.  Any removal in the window returns ``None``
        — use :meth:`edge_mutations_since` for the signed view.
        """
        if version < self._journal_floor:
            return None
        idx = bisect.bisect_right(self._journal_versions, version)
        if any(sign < 0 for sign in self._journal_signs[idx:]):
            return None
        self._journal_consumed = max(self._journal_consumed, self._mutation_version)
        return list(self._journal_edges[idx:])

    def edge_mutations_since(
        self, version: int
    ) -> tuple[list[TemporalEdgeTuple], list[TemporalEdgeTuple]] | None:
        """Net ``(insertions, removals)`` since ``version``, from the signed journal.

        Entries are netted per ``(canonical edge, time)`` — an edge inserted
        and removed (in either order) inside the window cancels out — so the
        current edge sets are exactly the old edge sets plus ``insertions``
        minus ``removals``.  Both lists hold canonical-orientation triples.
        Returns ``None`` when the journal was trimmed past ``version``.

        Streaming hot path: with a non-``None`` answer, delta compilation
        patches each dirty snapshot's CSR operator with one sparse addition
        and one sparse subtraction instead of re-walking the snapshot.
        Reading the window marks it consumed, which licenses the journal
        trim (see ``_journal_append``).
        """
        if version < self._journal_floor:
            return None
        idx = bisect.bisect_right(self._journal_versions, version)
        net: dict[tuple, int] = {}
        for edge, sign in zip(self._journal_edges[idx:], self._journal_signs[idx:]):
            u, v, t = edge
            net_key = (self._canonical_edge(u, v), t)
            net[net_key] = net.get(net_key, 0) + sign
        insertions: list[TemporalEdgeTuple] = []
        removals: list[TemporalEdgeTuple] = []
        for ((a, b), t), count in net.items():
            if count > 0:
                insertions.append((a, b, t))
            elif count < 0:
                removals.append((a, b, t))
        self._journal_consumed = max(self._journal_consumed, self._mutation_version)
        return insertions, removals

    def edges_at_unordered(self, time: Time) -> Iterator[EdgeTuple]:
        """Dump one snapshot's edge set without the repr-sort of edges_at."""
        if time not in self._edge_sets:
            raise TimestampNotFoundError(time)
        return iter(self._edge_sets[time])

    def num_static_edges(self) -> int:
        return sum(len(s) for s in self._edge_sets.values())

    def temporal_edges_unordered(self) -> Iterator[TemporalEdgeTuple]:
        """Dump every ``(u, v, t)`` edge without the per-snapshot repr-sort."""
        for t in self._timestamps:
            for u, v in self._edge_sets[t]:
                yield (u, v, t)

    def num_static_edges_at(self, time: Time) -> int:
        """Number of static edges in the snapshot at ``time``."""
        if time not in self._edge_sets:
            raise TimestampNotFoundError(time)
        return len(self._edge_sets[time])

    def nodes(self) -> set[Node]:
        out: set[Node] = set()
        for t in self._timestamps:
            out.update(self._succ[t].keys())
            out.update(self._pred[t].keys())
        return out

    def active_times(self, node: Node) -> list[Time]:
        return list(self._active_times.get(node, ()))

    def is_active(self, node: Node, time: Time) -> bool:
        times = self._active_times.get(node)
        if not times:
            return False
        idx = bisect.bisect_left(times, time)
        return idx < len(times) and times[idx] == time

    def active_nodes_at(self, time: Time) -> set[Node]:
        if time not in self._succ:
            raise TimestampNotFoundError(time)
        return {
            v for v, times in self._active_times.items() if self._has_time(times, time)
        }

    @staticmethod
    def _has_time(times: list[Time], time: Time) -> bool:
        idx = bisect.bisect_left(times, time)
        return idx < len(times) and times[idx] == time

    def forward_neighbors(self, node: Node, time: Time) -> list[TemporalNodeTuple]:
        if not self.is_active(node, time):
            return []
        result: list[TemporalNodeTuple] = []
        seen: set[TemporalNodeTuple] = set()
        for w in self._succ[time].get(node, ()):
            if w == node:
                continue
            tn = (w, time)
            if tn not in seen:
                seen.add(tn)
                result.append(tn)
        times = self._active_times.get(node, ())
        idx = bisect.bisect_right(times, time)
        for t_later in times[idx:]:
            result.append((node, t_later))
        return result

    def backward_neighbors(self, node: Node, time: Time) -> list[TemporalNodeTuple]:
        if not self.is_active(node, time):
            return []
        result: list[TemporalNodeTuple] = []
        seen: set[TemporalNodeTuple] = set()
        for w in self._pred[time].get(node, ()):
            if w == node:
                continue
            tn = (w, time)
            if tn not in seen:
                seen.add(tn)
                result.append(tn)
        times = self._active_times.get(node, ())
        idx = bisect.bisect_left(times, time)
        for t_earlier in times[:idx]:
            result.append((node, t_earlier))
        return result

    # ------------------------------------------------------------------ #
    # misc                                                               #
    # ------------------------------------------------------------------ #

    def copy(self) -> "AdjacencyListEvolvingGraph":
        """Deep-enough copy sharing no mutable state with the original."""
        clone = AdjacencyListEvolvingGraph(
            directed=self._directed, timestamps=self._timestamps
        )
        for t in self._timestamps:
            for u, v in self._edge_sets[t]:
                clone.add_edge(u, v, t)
        return clone

    def subgraph_from(self, time: Time) -> "AdjacencyListEvolvingGraph":
        """Return the evolving graph restricted to snapshots with label ``>= time``.

        The paper notes that snapshots earlier than the root's timestamp never
        participate in a BFS, so this restriction is the natural preprocessing
        step before rooting a search at ``(v, time)``.
        """
        clone = AdjacencyListEvolvingGraph(directed=self._directed)
        for t in self._timestamps:
            if t < time:
                continue
            clone.add_timestamp(t)
            for u, v in self._edge_sets[t]:
                clone.add_edge(u, v, t)
        return clone
