"""A minimal static directed/undirected graph.

The paper's Theorem 1 proves correctness of the evolving-graph BFS by
exhibiting a 1-1 correspondence with an ordinary BFS on a *static* expanded
graph ``G = (V, E~ ∪ E')`` whose nodes are the active temporal nodes.  This
module provides that static graph type together with a textbook BFS, so the
expansion can serve as an executable oracle in tests and benchmarks.

The type is deliberately small — it is a substrate, not a general-purpose
graph library — but it supports everything the expansion, the oracle BFS and
the algebraic formulation need: insertion, neighbour queries, adjacency-matrix
export and conversion to/from edge lists.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import NodeNotFoundError

__all__ = ["StaticGraph", "static_bfs"]


class StaticGraph:
    """A simple static graph with hashable nodes.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` pairs.
    directed:
        Whether edges are directed.
    """

    def __init__(
        self,
        edges: Iterable[tuple[Hashable, Hashable]] | None = None,
        *,
        directed: bool = True,
    ) -> None:
        self._directed = bool(directed)
        self._succ: dict[Hashable, list[Hashable]] = {}
        self._pred: dict[Hashable, list[Hashable]] = {}
        self._edges: set[tuple[Hashable, Hashable]] = set()
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # -- construction ---------------------------------------------------- #

    #: Class-level default; instances shadow it on their first mutation.
    _mutation_version: int = 0

    @property
    def is_directed(self) -> bool:
        return self._directed

    @property
    def mutation_version(self) -> int:
        """Monotonic mutation counter (bumped by ``add_node``/``add_edge``).

        :class:`~repro.graph.snapshots.SnapshotSequenceEvolvingGraph` sums
        these over its snapshots, so even edges inserted directly on a stored
        snapshot invalidate compiled kernels exactly.
        """
        return self._mutation_version

    def add_node(self, v: Hashable) -> None:
        """Ensure ``v`` exists even if isolated."""
        if v in self._succ:
            return
        self._succ[v] = []
        self._pred[v] = []
        self._mutation_version = self._mutation_version + 1

    def add_edge(self, u: Hashable, v: Hashable) -> bool:
        """Insert edge ``u -> v`` (both directions when undirected); return True if new."""
        key = self._canonical(u, v)
        if key in self._edges:
            return False
        self._edges.add(key)
        self._mutation_version = self._mutation_version + 1
        self.add_node(u)
        self.add_node(v)
        self._succ[u].append(v)
        self._pred[v].append(u)
        if not self._directed and u != v:
            self._succ[v].append(u)
            self._pred[u].append(v)
        return True

    def add_edges_from(self, edges: Iterable[tuple[Hashable, Hashable]]) -> int:
        return sum(self.add_edge(u, v) for u, v in edges)

    def _canonical(self, u: Hashable, v: Hashable) -> tuple[Hashable, Hashable]:
        if self._directed:
            return (u, v)
        return (u, v) if repr(u) <= repr(v) else (v, u)

    # -- queries ---------------------------------------------------------- #

    def nodes(self) -> list[Hashable]:
        return list(self._succ.keys())

    def num_nodes(self) -> int:
        return len(self._succ)

    def num_edges(self) -> int:
        return len(self._edges)

    def edges(self) -> Iterator[tuple[Hashable, Hashable]]:
        return iter(self._edges)

    def has_node(self, v: Hashable) -> bool:
        return v in self._succ

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        return self._canonical(u, v) in self._edges

    def successors(self, v: Hashable) -> list[Hashable]:
        if v not in self._succ:
            raise NodeNotFoundError(v)
        return list(self._succ[v])

    def predecessors(self, v: Hashable) -> list[Hashable]:
        if v not in self._pred:
            raise NodeNotFoundError(v)
        return list(self._pred[v])

    def out_degree(self, v: Hashable) -> int:
        if v not in self._succ:
            raise NodeNotFoundError(v)
        return len(self._succ[v])

    def in_degree(self, v: Hashable) -> int:
        if v not in self._pred:
            raise NodeNotFoundError(v)
        return len(self._pred[v])

    def reverse(self) -> "StaticGraph":
        """Return the graph with every edge direction flipped."""
        rev = StaticGraph(directed=self._directed)
        for v in self.nodes():
            rev.add_node(v)
        for u, v in self._edges:
            rev.add_edge(v, u)
        return rev

    # -- matrix export ---------------------------------------------------- #

    def adjacency_matrix(self, order: Sequence[Hashable] | None = None) -> np.ndarray:
        """Dense 0/1 adjacency matrix with rows/columns in ``order``.

        When ``order`` is omitted the insertion order of nodes is used.  For
        undirected graphs the matrix is symmetric.
        """
        if order is None:
            order = self.nodes()
        index: Mapping[Hashable, int] = {v: i for i, v in enumerate(order)}
        missing = [v for v in self._succ if v not in index]
        if missing:
            raise NodeNotFoundError(missing[0])
        n = len(order)
        mat = np.zeros((n, n), dtype=np.int64)
        for u, v in self._edges:
            mat[index[u], index[v]] = 1
            if not self._directed:
                mat[index[v], index[u]] = 1
        return mat

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<StaticGraph nodes={self.num_nodes()} edges={self.num_edges()} "
            f"directed={self._directed}>"
        )


def static_bfs(graph: StaticGraph, root: Hashable) -> dict[Hashable, int]:
    """Textbook BFS on a static graph: shortest hop-distance from ``root``.

    This is the classical algorithm the paper's Algorithm 1 reduces to via the
    Theorem-1 expansion; it serves as the correctness oracle in the test
    suite.

    Returns
    -------
    dict
        ``{node: distance}`` for every node reachable from ``root``
        (including ``root`` itself at distance 0).
    """
    if not graph.has_node(root):
        raise NodeNotFoundError(root)
    reached: dict[Hashable, int] = {root: 0}
    frontier: deque[Hashable] = deque([root])
    while frontier:
        u = frontier.popleft()
        d = reached[u]
        for w in graph.successors(u):
            if w not in reached:
                reached[w] = d + 1
                frontier.append(w)
    return reached
