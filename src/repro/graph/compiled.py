"""Shared compiled form of an evolving graph: the engine's execution artifact.

PR 1 taught the frontier engine to compile any evolving-graph representation
into per-snapshot CSR matrices, but the compilation lived inside
``FrontierKernel.__init__`` — every kernel rebuilt its own CSR stack, and the
dispatch cache guessed staleness from edge/timestamp counts.
:class:`CompiledTemporalGraph` moves that compilation into the graph layer as
a first-class, immutable artifact that every consumer shares:

* a **node index** — the sorted node universe and its label ↔ row mapping;
* the **forward-operator stack** ``F[t]`` — one CSR matrix per snapshot with
  ``F[t][v, u] = 1`` iff the snapshot at ``t`` has the edge ``u -> v``
  (symmetrized for undirected graphs, self-loops dropped per Definition 3),
  so ``F[t] @ x`` advances a frontier block along out-edges;
* the **backward-operator stack** ``F[t]^T`` — built *lazily* on first use,
  because forward-only workloads (the overwhelming majority) never apply it;
* the **symmetrized (spectral) stack** ``S[t]`` — the adjacency orientation
  the Grindrod–Higham communicability/walk family operates on, derived
  lazily at zero compilation cost (it aliases the forward stack for
  undirected graphs and the backward stack for directed ones);
* a ``(T, N)`` **activeness mask** (Definition 3);
* the source graph's ``mutation_version`` stamp, which lets caches decide
  *exactly* whether the artifact still describes the graph;
* the source graph's **per-snapshot version stamps** and a ``(T, N)``
  **label-presence matrix**, which together enable *delta compilation*
  (:meth:`CompiledTemporalGraph.recompile`): on a version bump, only the
  snapshots whose stamps moved are recompiled — the untouched snapshots'
  CSR operators, transposes, activeness-mask rows and presence rows are
  shared (the very same objects) with the previous artifact.  Streaming
  workloads (Figure-5 growth, :func:`repro.generators.stream.apply_stream`,
  :class:`repro.algorithms.incremental.IncrementalBFS`) therefore pay per
  batch only for the snapshots the batch touched.

The artifact is consumed by :class:`repro.engine.frontier.FrontierKernel`
(every BFS variant), by the vectorized analytics in :mod:`repro.algorithms`
(components build a temporal block matrix straight from the operator stack),
and by the batch/scaling harnesses in :mod:`repro.parallel` and
:mod:`repro.analysis`, which compile once and fan the artifact out across
workers and sweep repeats.  Use :func:`repro.engine.get_compiled` for the
cached path; construct directly only when an uncached snapshot is wanted.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graph.adjacency_matrix import MatrixSequenceEvolvingGraph
from repro.graph.base import BaseEvolvingGraph, EdgeTuple, Node, Time

__all__ = ["CompiledTemporalGraph"]


class CompiledTemporalGraph:
    """Immutable sparse compilation of one evolving graph.

    Build with :meth:`from_graph` (or ``graph.compile()``); prefer the cached
    :func:`repro.engine.get_compiled` in application code.  The artifact is a
    *snapshot*: mutating the source graph afterwards does not update it, but
    :meth:`is_current` (via the stored :attr:`mutation_version`) tells caches
    exactly when a rebuild is required.
    """

    def __init__(
        self,
        *,
        node_labels: Sequence[Node],
        times: Sequence[Time],
        forward_operators: Sequence[sp.csr_matrix],
        is_directed: bool,
        mutation_version: int,
        backward_operators: Sequence[sp.csr_matrix] | None = None,
        snapshot_versions: dict[Time, int] | None = None,
        active_mask: np.ndarray | None = None,
        label_presence: np.ndarray | None = None,
    ) -> None:
        if not times:
            raise GraphError("CompiledTemporalGraph requires at least one snapshot")
        if len(forward_operators) != len(times):
            raise GraphError(
                f"got {len(forward_operators)} operators for {len(times)} snapshots"
            )
        self._labels: list[Node] = list(node_labels)
        self._node_index: dict[Node, int] = {v: i for i, v in enumerate(self._labels)}
        self._times: list[Time] = list(times)
        self._time_index: dict[Time, int] = {t: i for i, t in enumerate(self._times)}
        self._forward: list[sp.csr_matrix] = list(forward_operators)
        self._backward: list[sp.csr_matrix] | None = (
            list(backward_operators) if backward_operators is not None else None
        )
        # the spectral (symmetrized-adjacency) stack is derived lazily from
        # the other two; see :attr:`symmetrized_operators`
        self._symmetrized: list[sp.csr_matrix] | None = None
        self._directed = bool(is_directed)
        self._version = int(mutation_version)
        self._n = int(self._forward[0].shape[0]) if self._forward else 0
        # per-snapshot source-graph stamps and the (T, N) label-presence
        # matrix: both None when the source offers no per-snapshot tracking,
        # in which case recompile() always falls back to a full rebuild
        self._snapshot_versions: dict[Time, int] | None = (
            dict(snapshot_versions) if snapshot_versions is not None else None
        )
        if label_presence is not None:
            label_presence = np.asarray(label_presence, dtype=bool)
            label_presence.setflags(write=False)
        self._presence: np.ndarray | None = label_presence
        #: Set by :meth:`recompile` when the delta path ran:
        #: ``{"rebuilt": <dirty snapshot count>, "reused": <shared count>}``.
        self.delta_stats: dict[str, int] | None = None

        if active_mask is None:
            active = np.zeros((len(self._times), self._n), dtype=bool)
            for k, m in enumerate(self._forward):
                active[k] = _active_row(m)
        else:
            active = np.asarray(active_mask, dtype=bool)
        active.setflags(write=False)
        self._active = active

    # ------------------------------------------------------------------ #
    # construction                                                        #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph(cls, graph: BaseEvolvingGraph) -> "CompiledTemporalGraph":
        """Compile any evolving-graph representation into the shared artifact.

        Matrix-sequence graphs are adopted matrix-by-matrix (both operator
        stacks come for free); every other representation is bulk-compiled
        from one pass over ``temporal_edges_unordered()``.  For undirected
        graphs the forward operators are symmetric, so the backward stack
        aliases the forward one at zero cost.
        """
        times = list(graph.timestamps)
        if not times:
            raise GraphError("cannot compile an evolving graph with no snapshots")
        version = graph.mutation_version
        if isinstance(graph, MatrixSequenceEvolvingGraph):
            labels: list[Node] = graph.node_labels
            pull = [graph.symmetrized_matrix_at(t).astype(np.int32) for t in times]
            push = [m.T.tocsr() for m in pull]
            backward: list[sp.csr_matrix] | None = pull
            presence: np.ndarray | None = None
        else:
            labels, push, presence = _compile_forward_operators(graph, times)
            backward = push if not graph.is_directed else None
        return cls(
            node_labels=labels,
            times=times,
            forward_operators=push,
            is_directed=graph.is_directed,
            mutation_version=version,
            backward_operators=backward,
            snapshot_versions=graph.snapshot_versions(),
            label_presence=presence,
        )

    @classmethod
    def recompile(
        cls,
        graph: BaseEvolvingGraph,
        previous: "CompiledTemporalGraph | None",
    ) -> "CompiledTemporalGraph":
        """Recompile ``graph``, reusing ``previous``'s untouched snapshots.

        When ``previous`` is still current it is returned unchanged.  When the
        graph's per-snapshot stamps (:meth:`BaseEvolvingGraph.snapshot_versions
        <repro.graph.base.BaseEvolvingGraph.snapshot_versions>`) identify the
        dirty snapshots and the node universe is provably unchanged, only
        those snapshots' CSR operators, transposes, activeness-mask rows and
        presence rows are rebuilt; every clean snapshot *shares its objects*
        with ``previous``, so a one-snapshot edit costs one snapshot's
        compilation instead of the whole graph's.  The artifact produced is
        bit-identical to :meth:`from_graph` on the mutated graph (asserted by
        the hypothesis suite in ``tests/test_delta_streaming.py``), and its
        :attr:`delta_stats` records how many snapshots were rebuilt vs reused.

        When the source graph keeps a *signed* mutation journal
        (:meth:`BaseEvolvingGraph.edge_mutations_since
        <repro.graph.base.BaseEvolvingGraph.edge_mutations_since>`), mixed
        insert/remove batches stay on the delta path: each dirty operator is
        patched with one sparse addition and one sparse subtraction, its
        activeness row is recomputed off the patched operator, and presence
        is maintained by probing only removal endpoints — O(batch + touched
        nnz), never a full rebuild.

        Every situation the delta path cannot prove safe falls back to a full
        :meth:`from_graph` build (``delta_stats`` stays ``None``): missing
        per-snapshot tracking, a changed node universe (a new label appeared,
        or a label lost its last appearance), removed snapshots, a
        directedness flip, or matrix-sequence adoption (already one cheap
        pass).
        """
        if previous is None:
            return cls.from_graph(graph)
        version = graph.mutation_version
        if version == previous._version:
            return previous
        snap_now = graph.snapshot_versions()
        if (
            snap_now is None
            or previous._snapshot_versions is None
            or previous._presence is None
            or previous._directed != graph.is_directed
            or isinstance(graph, MatrixSequenceEvolvingGraph)
        ):
            return cls.from_graph(graph)
        times = list(graph.timestamps)
        if not times:
            return cls.from_graph(graph)  # raises the usual GraphError
        prev_pos = previous._time_index
        prev_stamps = previous._snapshot_versions
        if any(t not in snap_now for t in prev_stamps):  # snapshot removed
            return cls.from_graph(graph)
        dirty = [
            t
            for t in times
            if t not in prev_pos or prev_stamps.get(t) != snap_now.get(t)
        ]
        if not dirty:
            # the version moved but no snapshot stamp did: unknown mutation
            return cls.from_graph(graph)
        index = previous._node_index
        n = previous._n
        directed = previous._directed
        dirty_set = set(dirty)
        rebuilt: dict[Time, tuple[sp.csr_matrix, np.ndarray, np.ndarray]] = {}
        shared_dirty: set[Time] = set()
        mutations = graph.edge_mutations_since(previous._version)
        if mutations is None:
            legacy = graph.edge_insertions_since(previous._version)
            mutations = None if legacy is None else (legacy, [])
        if mutations is not None:
            # streaming fast path: the signed journal nets the window to
            # per-snapshot insertion and removal sets, so each dirty operator
            # is patched with ONE sparse addition and (for mixed batches) ONE
            # sparse subtraction — cost proportional to the snapshot's nnz at
            # C speed, never a Python edge walk
            insertions, removals = mutations
            per_time: dict[Time, tuple[list[int], list[int]]] = {}
            rem_time: dict[Time, tuple[list[int], list[int]]] = {}
            rem_labels: dict[Time, list[EdgeTuple]] = {}
            for triples, buckets in ((insertions, per_time), (removals, rem_time)):
                for u, v, t in triples:
                    iu = index.get(u)
                    iv = index.get(v)
                    if iu is None or iv is None:  # node universe grew
                        return cls.from_graph(graph)
                    bucket = buckets.setdefault(t, ([], []))
                    bucket[0].append(iu)
                    bucket[1].append(iv)
                    if buckets is rem_time:
                        rem_labels.setdefault(t, []).append((u, v))
            if any(t not in dirty_set for t in per_time) or any(
                t not in dirty_set for t in rem_time
            ):  # inconsistent stamps
                return cls.from_graph(graph)
            for t in dirty:
                adds = per_time.get(t)
                rems = rem_time.get(t)
                k = prev_pos.get(t)
                if adds is None and rems is None:
                    if k is not None:
                        # stamp moved but the window netted to nothing here
                        # (insert-then-remove pairs, or an exotic stamp bump):
                        # journal completeness says the edge set is unchanged,
                        # so the previous objects are still exact
                        shared_dirty.add(t)
                    else:
                        # a freshly registered, still-empty snapshot
                        op = sp.csr_matrix((n, n), dtype=np.int32)
                        rebuilt[t] = (op, _active_row(op), np.zeros(n, dtype=bool))
                    continue
                if k is None and rems is not None:
                    # net removals from a snapshot `previous` never compiled
                    # contradict the journal contract — trust neither
                    return cls.from_graph(graph)
                if adds is not None:
                    u_idx = np.asarray(adds[0], dtype=np.int64)
                    v_idx = np.asarray(adds[1], dtype=np.int64)
                    add_op = _snapshot_operator(u_idx, v_idx, n, directed)
                else:
                    u_idx = v_idx = None
                    add_op = None
                if k is None:
                    op = add_op
                    mask_row = _active_row(add_op)
                    presence_row = np.zeros(n, dtype=bool)
                elif rems is None:
                    op = (previous._forward[k] + add_op).tocsr()
                    if op.nnz:
                        op.data[:] = 1  # insertions cannot overlap, but clamp
                    # the patched structure is the union of the operands'
                    mask_row = previous._active[k] | _active_row(add_op)
                    presence_row = previous._presence[k].copy()
                else:
                    r_idx = np.asarray(rems[0], dtype=np.int64)
                    s_idx = np.asarray(rems[1], dtype=np.int64)
                    sub_op = _snapshot_operator(r_idx, s_idx, n, directed)
                    patched = previous._forward[k] - sub_op
                    if add_op is not None:
                        patched = patched + add_op
                    op = patched.tocsr()
                    op.eliminate_zeros()
                    if op.nnz:
                        op.data[:] = 1
                    # removals can deactivate nodes, so the union trick no
                    # longer applies: recompute the row off the new operator
                    mask_row = _active_row(op)
                    presence_row = previous._presence[k].copy()
                    # a removal endpoint stays present iff it still touches
                    # any edge at t (self-loops included, which the operator
                    # drops) — probe the final graph state, which is
                    # order-independent ground truth
                    for (a, b), ia, ib in zip(rem_labels[t], rems[0], rems[1]):
                        presence_row[ia] = _endpoint_present(graph, a, t)
                        presence_row[ib] = _endpoint_present(graph, b, t)
                if adds is not None:
                    presence_row[u_idx] = True
                    presence_row[v_idx] = True
                rebuilt[t] = (op, mask_row, presence_row)
        else:
            for t in dirty:
                entry = _rebuild_snapshot(graph, t, index, n, directed)
                if entry is None:  # node universe grew
                    return cls.from_graph(graph)
                rebuilt[t] = entry
        # the undirected backward stack aliases the forward one, so only
        # directed artifacts carry distinct transposes worth patching
        patch_backward = directed and previous._backward is not None
        forward: list[sp.csr_matrix] = []
        backward: list[sp.csr_matrix] | None = [] if patch_backward else None
        mask_rows: list[np.ndarray] = []
        presence_rows: list[np.ndarray] = []
        reused = 0
        for t in times:
            if t in rebuilt:
                op, mask_row, presence_row = rebuilt[t]
                forward.append(op)
                mask_rows.append(mask_row)
                presence_rows.append(presence_row)
                if patch_backward:
                    backward.append(op.T.tocsr())
            else:
                k = prev_pos[t]
                forward.append(previous._forward[k])
                mask_rows.append(previous._active[k])
                presence_rows.append(previous._presence[k])
                if patch_backward:
                    backward.append(previous._backward[k])
                reused += 1
        presence = np.stack(presence_rows) if n else np.zeros((len(times), 0), bool)
        if not presence.any(axis=0).all():
            # a label lost its last appearance: the from-scratch universe
            # would shrink, so the reused index would no longer be identical
            return cls.from_graph(graph)
        if not directed:
            backward = forward
        artifact = cls(
            node_labels=previous._labels,
            times=times,
            forward_operators=forward,
            is_directed=directed,
            mutation_version=version,
            backward_operators=backward,
            snapshot_versions=snap_now,
            active_mask=np.stack(mask_rows) if n else np.zeros((len(times), 0), bool),
            label_presence=presence,
        )
        artifact.delta_stats = {
            "rebuilt": len(dirty) - len(shared_dirty),
            "reused": reused,
        }
        return artifact

    # ------------------------------------------------------------------ #
    # structure                                                           #
    # ------------------------------------------------------------------ #

    @property
    def node_labels(self) -> list[Node]:
        """Node labels indexing operator rows/columns."""
        return list(self._labels)

    @property
    def node_index(self) -> dict[Node, int]:
        """Mapping from node label to its row/column index."""
        return dict(self._node_index)

    @property
    def times(self) -> tuple[Time, ...]:
        """Snapshot labels, in time order."""
        return tuple(self._times)

    @property
    def time_index(self) -> dict[Time, int]:
        """Mapping from timestamp label to its snapshot position."""
        return dict(self._time_index)

    @property
    def num_nodes(self) -> int:
        """Size ``N`` of the shared node universe."""
        return self._n

    @property
    def num_snapshots(self) -> int:
        """Number of snapshots ``T``."""
        return len(self._times)

    @property
    def nnz(self) -> int:
        """Stored entries summed over all snapshot operators."""
        return int(sum(m.nnz for m in self._forward))

    @property
    def is_directed(self) -> bool:
        """Whether the source graph was directed."""
        return self._directed

    @property
    def mutation_version(self) -> int:
        """The source graph's mutation version at compile time."""
        return self._version

    @property
    def snapshot_versions(self) -> dict[Time, int] | None:
        """Per-snapshot source stamps at compile time (``None`` when untracked)."""
        if self._snapshot_versions is None:
            return None
        return dict(self._snapshot_versions)

    @property
    def label_presence(self) -> np.ndarray | None:
        """Read-only ``(T, N)`` matrix: label appears in an edge of snapshot ``t``.

        Unlike :attr:`active_mask` this includes self-loop-only appearances
        (which put a label in the node universe without activating it), so it
        is exactly the information delta recompilation needs to prove the
        universe unchanged.  ``None`` when the artifact was built without
        per-snapshot tracking (matrix-sequence adoption).
        """
        return self._presence

    @property
    def active_mask(self) -> np.ndarray:
        """Read-only ``(T, N)`` boolean activeness mask (Definition 3)."""
        return self._active

    def is_current(self, graph: BaseEvolvingGraph) -> bool:
        """Whether this artifact still describes ``graph`` exactly."""
        return graph.mutation_version == self._version

    # ------------------------------------------------------------------ #
    # operator stacks                                                     #
    # ------------------------------------------------------------------ #

    @property
    def forward_operators(self) -> list[sp.csr_matrix]:
        """Per-snapshot CSR stack ``F[t]`` advancing frontiers along out-edges."""
        return list(self._forward)

    @property
    def backward_operators(self) -> list[sp.csr_matrix]:
        """Per-snapshot transposes ``F[t]^T`` (in-edge expansion), built lazily.

        Forward-only workloads never touch this property, so they never pay
        for the transpose conversion (see ``tests/test_engine.py``).
        """
        if self._backward is None:
            self._backward = [m.T.tocsr() for m in self._forward]
        return list(self._backward)

    @property
    def transposes_built(self) -> bool:
        """Whether the backward-operator stack has been materialized yet."""
        return self._backward is not None

    @property
    def symmetrized_operators(self) -> list[sp.csr_matrix]:
        """Per-snapshot stack ``S[t]`` in the adjacency orientation, built lazily.

        This is the matrix family the spectral/walk-counting baselines
        (Grindrod–Higham communicability, dynamic-walk counts) operate on —
        exactly :meth:`MatrixSequenceEvolvingGraph.symmetrized_matrix_at
        <repro.graph.adjacency_matrix.MatrixSequenceEvolvingGraph.symmetrized_matrix_at>`
        compiled onto the artifact: for directed graphs ``S[t] = A[t]``
        (``S[t][u, v] = 1`` iff the edge ``u -> v`` exists at ``t``), for
        undirected graphs the 0/1-clamped ``A[t] + A[t]^T``.  Self-loops are
        dropped, matching the matrix-sequence normalization.

        No new matrices are ever compiled: the undirected forward stack *is*
        already symmetric (so it is aliased at zero cost), and the directed
        adjacency orientation is the transpose of the forward stack (so the
        lazily built backward stack is aliased).  Frontier-only workloads
        therefore never pay for this property.
        """
        if self._symmetrized is None:
            if self._directed:
                # F[t] = A[t]^T, so the adjacency orientation is the
                # (lazily built) backward stack
                self._symmetrized = self.backward_operators
            else:
                self._symmetrized = self._forward
        return list(self._symmetrized)

    @property
    def symmetrized_built(self) -> bool:
        """Whether the symmetrized (spectral) stack has been materialized yet."""
        return self._symmetrized is not None

    # ------------------------------------------------------------------ #
    # point queries                                                       #
    # ------------------------------------------------------------------ #

    def is_active(self, node: Node, time: Time) -> bool:
        """Whether ``(node, time)`` is active (Definition 3), per the compiled mask."""
        ti = self._time_index.get(time)
        vi = self._node_index.get(node)
        if ti is None or vi is None:
            return False
        return bool(self._active[ti, vi])

    def slot(self, node: Node, time: Time) -> tuple[int, int] | None:
        """The ``(time index, node index)`` of a temporal node, or ``None``."""
        ti = self._time_index.get(time)
        vi = self._node_index.get(node)
        if ti is None or vi is None:
            return None
        return ti, vi

    # ------------------------------------------------------------------ #
    # serialization                                                       #
    # ------------------------------------------------------------------ #

    def __getstate__(self) -> dict:
        """Pickle support: the artifact is the process-pool unit of work.

        :func:`repro.parallel.batch.batch_bfs` with ``backend="process"``
        ships this object — never the source graph — to worker processes,
        which rebuild their kernels over it.  Everything inside (CSR stacks,
        index dicts, the activeness mask) pickles natively.
        """
        return dict(self.__dict__)

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # NumPy pickling does not preserve the WRITEABLE flag; re-freeze the
        # mask (and presence matrix) so the immutability contract survives
        # the round trip.
        self._active.setflags(write=False)
        if self._presence is not None:
            self._presence.setflags(write=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CompiledTemporalGraph snapshots={self.num_snapshots} "
            f"nodes={self.num_nodes} nnz={self.nnz} "
            f"version={self._version} directed={self._directed}>"
        )


def _rebuild_snapshot(
    graph: BaseEvolvingGraph,
    time: Time,
    index: dict[Node, int],
    n: int,
    directed: bool,
) -> tuple[sp.csr_matrix, np.ndarray, np.ndarray] | None:
    """Recompile one dirty snapshot against an existing node universe.

    Returns ``(operator, active row, presence row)``, or ``None`` when the
    snapshot mentions a label outside the universe (the caller must fall
    back to a full compile).
    """
    sources: list[int] = []
    targets: list[int] = []
    for u, v in graph.edges_at_unordered(time):
        iu = index.get(u)
        iv = index.get(v)
        if iu is None or iv is None:
            return None
        sources.append(iu)
        targets.append(iv)
    u_idx = np.asarray(sources, dtype=np.int64)
    v_idx = np.asarray(targets, dtype=np.int64)
    row = np.zeros(n, dtype=bool)
    row[u_idx] = True
    row[v_idx] = True
    op = _snapshot_operator(u_idx, v_idx, n, directed)
    return op, _active_row(op), row


def _endpoint_present(graph: BaseEvolvingGraph, node: Node, time: Time) -> bool:
    """Whether ``node`` still touches any edge at ``time`` in ``graph``.

    Presence (unlike activeness) counts self-loops, so it cannot be read off
    the compiled operator; both directions are probed because a directed
    node may survive on in-edges alone.
    """
    if next(graph.out_neighbors_at(node, time), None) is not None:
        return True
    return next(graph.in_neighbors_at(node, time), None) is not None


def _active_row(operator: sp.csr_matrix) -> np.ndarray:
    """One snapshot's activeness row (Definition 3) off its forward operator.

    A node is active iff it touches any stored entry: a non-empty row
    (in-edge) or a column appearance (out-edge).  Read straight off the CSR
    structure — no scipy reduction dispatch on the hot recompile path.
    """
    active = np.diff(operator.indptr) > 0
    active[operator.indices] = True
    return active


def _snapshot_operator(
    u_idx: np.ndarray, v_idx: np.ndarray, n: int, directed: bool
) -> sp.csr_matrix:
    """One snapshot's CSR forward operator from (source, destination) indices.

    Shared by the bulk compile and the delta recompile so both produce
    bit-identical matrices: symmetrize undirected edges, drop self-loops
    (they never create activeness, Definition 3), deduplicate to 0/1.  Rows
    are destinations, columns are sources: ``F[t] = A[t]^T``.  The canonical
    CSR buffers are assembled directly (lexsort + dedup + bincount) instead
    of going through scipy's COO conversion — this sits on the per-batch
    delta-recompile hot path, where the COO machinery's validation overhead
    would dominate small deltas.
    """
    if not directed:
        u_idx, v_idx = (
            np.concatenate([u_idx, v_idx]),
            np.concatenate([v_idx, u_idx]),
        )
    keep = u_idx != v_idx
    u_idx, v_idx = u_idx[keep], v_idx[keep]
    # canonical CSR order: by row (destination), then column (source)
    order = np.lexsort((u_idx, v_idx))
    rows = v_idx[order]
    cols = u_idx[order]
    if rows.size:
        first = np.empty(rows.size, dtype=bool)
        first[0] = True
        np.logical_or(rows[1:] != rows[:-1], cols[1:] != cols[:-1], out=first[1:])
        rows, cols = rows[first], cols[first]
    indptr = np.zeros(n + 1, dtype=np.int32)
    np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
    return sp.csr_matrix(
        (np.ones(rows.size, dtype=np.int32), cols.astype(np.int32), indptr),
        shape=(n, n),
    )


def _compile_forward_operators(
    graph: BaseEvolvingGraph, times: list[Time]
) -> tuple[list[Node], list[sp.csr_matrix], np.ndarray]:
    """Bulk-compile any representation into the per-snapshot forward stack.

    The forward operator is assembled directly in its transposed-adjacency
    orientation (row = destination, column = source), so no separate
    transpose pass is ever needed for forward traversal.  Also returns the
    ``(T, N)`` label-presence matrix delta recompilation diffs against.
    """
    time_index = {t: i for i, t in enumerate(times)}
    triples = list(graph.temporal_edges_unordered())
    label_set = {u for u, _, _ in triples} | {v for _, v, _ in triples}
    labels = sorted(label_set, key=repr)
    index = {v: i for i, v in enumerate(labels)}
    n = len(labels)
    count = len(triples)
    u_idx = np.fromiter((index[u] for u, _, _ in triples), dtype=np.int64, count=count)
    v_idx = np.fromiter((index[v] for _, v, _ in triples), dtype=np.int64, count=count)
    t_gen = (time_index[t] for _, _, t in triples)
    t_idx = np.fromiter(t_gen, dtype=np.int64, count=count)
    presence = np.zeros((len(times), n), dtype=bool)
    presence[t_idx, u_idx] = True
    presence[t_idx, v_idx] = True
    if not graph.is_directed:
        u_idx, v_idx = np.concatenate([u_idx, v_idx]), np.concatenate([v_idx, u_idx])
        t_idx = np.concatenate([t_idx, t_idx])
    keep = u_idx != v_idx  # self-loops never create activeness (Definition 3)
    u_idx, v_idx, t_idx = u_idx[keep], v_idx[keep], t_idx[keep]
    mats: list[sp.csr_matrix] = []
    for k in range(len(times)):
        mask = t_idx == k
        data = np.ones(int(mask.sum()), dtype=np.int32)
        # rows are destinations, columns are sources: F[t] = A[t]^T; the COO
        # conversion canonicalizes, yielding buffers bit-identical to the
        # delta builder _snapshot_operator (asserted by the hypothesis suite)
        mat = sp.csr_matrix((data, (v_idx[mask], u_idx[mask])), shape=(n, n))
        mat.sum_duplicates()
        if mat.nnz:
            mat.data[:] = 1
        mats.append(mat)
    return labels, mats, presence
