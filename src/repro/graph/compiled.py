"""Shared compiled form of an evolving graph: the engine's execution artifact.

PR 1 taught the frontier engine to compile any evolving-graph representation
into per-snapshot CSR matrices, but the compilation lived inside
``FrontierKernel.__init__`` — every kernel rebuilt its own CSR stack, and the
dispatch cache guessed staleness from edge/timestamp counts.
:class:`CompiledTemporalGraph` moves that compilation into the graph layer as
a first-class, immutable artifact that every consumer shares:

* a **node index** — the sorted node universe and its label ↔ row mapping;
* the **forward-operator stack** ``F[t]`` — one CSR matrix per snapshot with
  ``F[t][v, u] = 1`` iff the snapshot at ``t`` has the edge ``u -> v``
  (symmetrized for undirected graphs, self-loops dropped per Definition 3),
  so ``F[t] @ x`` advances a frontier block along out-edges;
* the **backward-operator stack** ``F[t]^T`` — built *lazily* on first use,
  because forward-only workloads (the overwhelming majority) never apply it;
* a ``(T, N)`` **activeness mask** (Definition 3);
* the source graph's ``mutation_version`` stamp, which lets caches decide
  *exactly* whether the artifact still describes the graph.

The artifact is consumed by :class:`repro.engine.frontier.FrontierKernel`
(every BFS variant), by the vectorized analytics in :mod:`repro.algorithms`
(components build a temporal block matrix straight from the operator stack),
and by the batch/scaling harnesses in :mod:`repro.parallel` and
:mod:`repro.analysis`, which compile once and fan the artifact out across
workers and sweep repeats.  Use :func:`repro.engine.get_compiled` for the
cached path; construct directly only when an uncached snapshot is wanted.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graph.adjacency_matrix import MatrixSequenceEvolvingGraph
from repro.graph.base import BaseEvolvingGraph, Node, Time

__all__ = ["CompiledTemporalGraph"]


class CompiledTemporalGraph:
    """Immutable sparse compilation of one evolving graph.

    Build with :meth:`from_graph` (or ``graph.compile()``); prefer the cached
    :func:`repro.engine.get_compiled` in application code.  The artifact is a
    *snapshot*: mutating the source graph afterwards does not update it, but
    :meth:`is_current` (via the stored :attr:`mutation_version`) tells caches
    exactly when a rebuild is required.
    """

    def __init__(
        self,
        *,
        node_labels: Sequence[Node],
        times: Sequence[Time],
        forward_operators: Sequence[sp.csr_matrix],
        is_directed: bool,
        mutation_version: int,
        backward_operators: Sequence[sp.csr_matrix] | None = None,
    ) -> None:
        if not times:
            raise GraphError("CompiledTemporalGraph requires at least one snapshot")
        if len(forward_operators) != len(times):
            raise GraphError(
                f"got {len(forward_operators)} operators for {len(times)} snapshots"
            )
        self._labels: list[Node] = list(node_labels)
        self._node_index: dict[Node, int] = {v: i for i, v in enumerate(self._labels)}
        self._times: list[Time] = list(times)
        self._time_index: dict[Time, int] = {t: i for i, t in enumerate(self._times)}
        self._forward: list[sp.csr_matrix] = list(forward_operators)
        self._backward: list[sp.csr_matrix] | None = (
            list(backward_operators) if backward_operators is not None else None
        )
        self._directed = bool(is_directed)
        self._version = int(mutation_version)
        self._n = int(self._forward[0].shape[0]) if self._forward else 0

        active = np.zeros((len(self._times), self._n), dtype=bool)
        for k, m in enumerate(self._forward):
            in_deg = np.asarray(m.sum(axis=1)).ravel()
            out_deg = np.asarray(m.sum(axis=0)).ravel()
            active[k] = (in_deg + out_deg) > 0
        active.setflags(write=False)
        self._active = active

    # ------------------------------------------------------------------ #
    # construction                                                        #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph(cls, graph: BaseEvolvingGraph) -> "CompiledTemporalGraph":
        """Compile any evolving-graph representation into the shared artifact.

        Matrix-sequence graphs are adopted matrix-by-matrix (both operator
        stacks come for free); every other representation is bulk-compiled
        from one pass over ``temporal_edges_unordered()``.  For undirected
        graphs the forward operators are symmetric, so the backward stack
        aliases the forward one at zero cost.
        """
        times = list(graph.timestamps)
        if not times:
            raise GraphError("cannot compile an evolving graph with no snapshots")
        version = graph.mutation_version
        if isinstance(graph, MatrixSequenceEvolvingGraph):
            labels: list[Node] = graph.node_labels
            pull = [graph.symmetrized_matrix_at(t).astype(np.int32) for t in times]
            push = [m.T.tocsr() for m in pull]
            backward: list[sp.csr_matrix] | None = pull
        else:
            labels, push = _compile_forward_operators(graph, times)
            backward = push if not graph.is_directed else None
        return cls(
            node_labels=labels,
            times=times,
            forward_operators=push,
            is_directed=graph.is_directed,
            mutation_version=version,
            backward_operators=backward,
        )

    # ------------------------------------------------------------------ #
    # structure                                                           #
    # ------------------------------------------------------------------ #

    @property
    def node_labels(self) -> list[Node]:
        """Node labels indexing operator rows/columns."""
        return list(self._labels)

    @property
    def node_index(self) -> dict[Node, int]:
        """Mapping from node label to its row/column index."""
        return dict(self._node_index)

    @property
    def times(self) -> tuple[Time, ...]:
        """Snapshot labels, in time order."""
        return tuple(self._times)

    @property
    def time_index(self) -> dict[Time, int]:
        """Mapping from timestamp label to its snapshot position."""
        return dict(self._time_index)

    @property
    def num_nodes(self) -> int:
        """Size ``N`` of the shared node universe."""
        return self._n

    @property
    def num_snapshots(self) -> int:
        """Number of snapshots ``T``."""
        return len(self._times)

    @property
    def nnz(self) -> int:
        """Stored entries summed over all snapshot operators."""
        return int(sum(m.nnz for m in self._forward))

    @property
    def is_directed(self) -> bool:
        """Whether the source graph was directed."""
        return self._directed

    @property
    def mutation_version(self) -> int:
        """The source graph's mutation version at compile time."""
        return self._version

    @property
    def active_mask(self) -> np.ndarray:
        """Read-only ``(T, N)`` boolean activeness mask (Definition 3)."""
        return self._active

    def is_current(self, graph: BaseEvolvingGraph) -> bool:
        """Whether this artifact still describes ``graph`` exactly."""
        return graph.mutation_version == self._version

    # ------------------------------------------------------------------ #
    # operator stacks                                                     #
    # ------------------------------------------------------------------ #

    @property
    def forward_operators(self) -> list[sp.csr_matrix]:
        """Per-snapshot CSR stack ``F[t]`` advancing frontiers along out-edges."""
        return list(self._forward)

    @property
    def backward_operators(self) -> list[sp.csr_matrix]:
        """Per-snapshot transposes ``F[t]^T`` (in-edge expansion), built lazily.

        Forward-only workloads never touch this property, so they never pay
        for the transpose conversion (see ``tests/test_engine.py``).
        """
        if self._backward is None:
            self._backward = [m.T.tocsr() for m in self._forward]
        return list(self._backward)

    @property
    def transposes_built(self) -> bool:
        """Whether the backward-operator stack has been materialized yet."""
        return self._backward is not None

    # ------------------------------------------------------------------ #
    # point queries                                                       #
    # ------------------------------------------------------------------ #

    def is_active(self, node: Node, time: Time) -> bool:
        """Whether ``(node, time)`` is active (Definition 3), per the compiled mask."""
        ti = self._time_index.get(time)
        vi = self._node_index.get(node)
        if ti is None or vi is None:
            return False
        return bool(self._active[ti, vi])

    def slot(self, node: Node, time: Time) -> tuple[int, int] | None:
        """The ``(time index, node index)`` of a temporal node, or ``None``."""
        ti = self._time_index.get(time)
        vi = self._node_index.get(node)
        if ti is None or vi is None:
            return None
        return ti, vi

    # ------------------------------------------------------------------ #
    # serialization                                                       #
    # ------------------------------------------------------------------ #

    def __getstate__(self) -> dict:
        """Pickle support: the artifact is the process-pool unit of work.

        :func:`repro.parallel.batch.batch_bfs` with ``backend="process"``
        ships this object — never the source graph — to worker processes,
        which rebuild their kernels over it.  Everything inside (CSR stacks,
        index dicts, the activeness mask) pickles natively.
        """
        return dict(self.__dict__)

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # NumPy pickling does not preserve the WRITEABLE flag; re-freeze the
        # mask so the immutability contract survives the round trip.
        self._active.setflags(write=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CompiledTemporalGraph snapshots={self.num_snapshots} "
            f"nodes={self.num_nodes} nnz={self.nnz} "
            f"version={self._version} directed={self._directed}>"
        )


def _compile_forward_operators(
    graph: BaseEvolvingGraph, times: list[Time]
) -> tuple[list[Node], list[sp.csr_matrix]]:
    """Bulk-compile any representation into the per-snapshot forward stack.

    The forward operator is assembled directly in its transposed-adjacency
    orientation (row = destination, column = source), so no separate
    transpose pass is ever needed for forward traversal.
    """
    time_index = {t: i for i, t in enumerate(times)}
    triples = list(graph.temporal_edges_unordered())
    label_set = {u for u, _, _ in triples} | {v for _, v, _ in triples}
    labels = sorted(label_set, key=repr)
    index = {v: i for i, v in enumerate(labels)}
    n = len(labels)
    count = len(triples)
    u_idx = np.fromiter((index[u] for u, _, _ in triples), dtype=np.int64, count=count)
    v_idx = np.fromiter((index[v] for _, v, _ in triples), dtype=np.int64, count=count)
    t_gen = (time_index[t] for _, _, t in triples)
    t_idx = np.fromiter(t_gen, dtype=np.int64, count=count)
    if not graph.is_directed:
        u_idx, v_idx = np.concatenate([u_idx, v_idx]), np.concatenate([v_idx, u_idx])
        t_idx = np.concatenate([t_idx, t_idx])
    keep = u_idx != v_idx  # self-loops never create activeness (Definition 3)
    u_idx, v_idx, t_idx = u_idx[keep], v_idx[keep], t_idx[keep]
    mats: list[sp.csr_matrix] = []
    for k in range(len(times)):
        mask = t_idx == k
        data = np.ones(int(mask.sum()), dtype=np.int32)
        # rows are destinations, columns are sources: F[t] = A[t]^T
        mat = sp.csr_matrix((data, (v_idx[mask], u_idx[mask])), shape=(n, n))
        mat.sum_duplicates()
        if mat.nnz:
            mat.data[:] = 1
        mats.append(mat)
    return labels, mats
