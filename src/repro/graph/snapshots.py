"""Snapshot-sequence representation of an evolving graph.

Holds the evolving graph exactly as Definition 1 states it: an ordered list of
:class:`~repro.graph.static_graph.StaticGraph` snapshots, each carrying a time
label.  This representation is the most literal reading of the paper and is
convenient when snapshots are produced one at a time (e.g. by discretising a
continuous-time process) or when per-snapshot static algorithms need to run
unchanged.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.exceptions import RepresentationError, TimestampNotFoundError
from repro.graph.base import (
    BaseEvolvingGraph,
    EdgeTuple,
    Node,
    TemporalEdgeTuple,
    Time,
)
from repro.graph.static_graph import StaticGraph

__all__ = ["SnapshotSequenceEvolvingGraph"]


class SnapshotSequenceEvolvingGraph(BaseEvolvingGraph):
    """Evolving graph as an explicit list of (timestamp, static graph) pairs."""

    def __init__(
        self,
        snapshots: Sequence[tuple[Time, StaticGraph]] | None = None,
        *,
        directed: bool = True,
    ) -> None:
        self._directed = bool(directed)
        self._times: list[Time] = []
        self._graphs: dict[Time, StaticGraph] = {}
        if snapshots:
            for t, g in snapshots:
                self.add_snapshot(t, g)

    # ------------------------------------------------------------------ #
    # construction                                                        #
    # ------------------------------------------------------------------ #

    def add_snapshot(self, time: Time, graph: StaticGraph | None = None) -> StaticGraph:
        """Append a snapshot labelled ``time``; returns the stored static graph.

        Snapshots may be added in any order; they are kept sorted by label.
        The snapshot's directedness must match the evolving graph's.
        """
        if time in self._graphs:
            raise RepresentationError(f"snapshot for timestamp {time!r} already exists")
        if graph is None:
            graph = StaticGraph(directed=self._directed)
        if graph.is_directed != self._directed:
            raise RepresentationError(
                "snapshot directedness does not match the evolving graph"
            )
        self._graphs[time] = graph
        self._times.append(time)
        self._times.sort()
        self._bump_mutation_version()
        return graph

    @property
    def mutation_version(self) -> int:
        """Exact mutation counter, including *direct* snapshot mutations.

        The sum of this container's own counter (bumped by
        :meth:`add_snapshot`) and every stored snapshot's
        :attr:`~repro.graph.static_graph.StaticGraph.mutation_version`, so
        edges added either through :meth:`add_edge` or directly on a
        ``StaticGraph`` obtained from :meth:`snapshot` are both detected.
        """
        return self._mutation_version + sum(
            g.mutation_version for g in self._graphs.values()
        )

    def snapshot_versions(self) -> dict[Time, int]:
        """Per-snapshot stamps: each stored static graph's own mutation version.

        Direct mutation of a :class:`StaticGraph` obtained from
        :meth:`snapshot` bumps only that snapshot's stamp, so delta
        compilation rebuilds exactly the touched snapshot.
        """
        return {t: self._graphs[t].mutation_version for t in self._times}

    def add_edge(self, u: Node, v: Node, time: Time) -> bool:
        """Insert an edge, creating the snapshot when needed."""
        if time not in self._graphs:
            self.add_snapshot(time)
        return self._graphs[time].add_edge(u, v)

    @classmethod
    def from_edges(
        cls, edges: Iterable[TemporalEdgeTuple], *, directed: bool = True
    ) -> "SnapshotSequenceEvolvingGraph":
        g = cls(directed=directed)
        for u, v, t in edges:
            g.add_edge(u, v, t)
        return g

    # ------------------------------------------------------------------ #
    # snapshot access                                                     #
    # ------------------------------------------------------------------ #

    def snapshot(self, time: Time) -> StaticGraph:
        """The static graph labelled ``time``."""
        try:
            return self._graphs[time]
        except KeyError as exc:
            raise TimestampNotFoundError(time) from exc

    def snapshots(self) -> list[tuple[Time, StaticGraph]]:
        """All ``(time, static graph)`` pairs in time order."""
        return [(t, self._graphs[t]) for t in self._times]

    # ------------------------------------------------------------------ #
    # BaseEvolvingGraph primitives                                        #
    # ------------------------------------------------------------------ #

    @property
    def is_directed(self) -> bool:
        return self._directed

    @property
    def timestamps(self) -> Sequence[Time]:
        return tuple(self._times)

    def edges_at(self, time: Time) -> Iterator[EdgeTuple]:
        return iter(sorted(self.snapshot(time).edges(), key=repr))

    def edges_at_unordered(self, time: Time) -> Iterator[EdgeTuple]:
        """Dump one snapshot's edges without the repr-sort of edges_at."""
        return iter(self.snapshot(time).edges())

    def out_neighbors_at(self, node: Node, time: Time) -> Iterator[Node]:
        g = self.snapshot(time)
        if not g.has_node(node):
            return iter(())
        return iter(g.successors(node))

    def in_neighbors_at(self, node: Node, time: Time) -> Iterator[Node]:
        g = self.snapshot(time)
        if not g.has_node(node):
            return iter(())
        return iter(g.predecessors(node))

    # ------------------------------------------------------------------ #
    # conversion                                                          #
    # ------------------------------------------------------------------ #

    def to_triples(self) -> list[TemporalEdgeTuple]:
        """Materialise the graph as ``(u, v, t)`` label triples."""
        out: list[TemporalEdgeTuple] = []
        for t in self._times:
            out.extend((u, v, t) for u, v in self._graphs[t].edges())
        return out
