"""repro — reproduction of "The Right Way to Search Evolving Graphs" (Chen & Zhang, IPPS 2016).

The package implements the paper's breadth-first search over evolving graphs
(Algorithm 1), its algebraic block-matrix formulation (Algorithm 2), the
Theorem-1 static expansion, correct-vs-naive temporal path counting, and the
surrounding substrates: evolving-graph representations, sparse linear-algebra
kernels, workload generators, temporal-graph algorithms and analysis tools.

Quickstart
----------
>>> from repro import datasets, evolving_bfs
>>> g = datasets.figure1_graph()
>>> result = evolving_bfs(g, (1, "t1"))
>>> result.distance(3, "t3")
3
"""

from repro import (
    algorithms,
    analysis,
    datasets,
    engine,
    generators,
    io,
    linalg,
    parallel,
)
from repro.core import (
    BFSResult,
    BlockAdjacencyMatrix,
    StaticExpansion,
    TemporalNode,
    TemporalPath,
    algebraic_bfs,
    algebraic_bfs_blocked,
    backward_bfs,
    build_block_adjacency,
    build_static_expansion,
    count_temporal_paths,
    count_temporal_paths_by_hops,
    enumerate_temporal_paths,
    evolving_bfs,
    evolving_bfs_tree,
    expansion_bfs,
    forward_neighbors,
    k_forward_neighbors,
    multi_source_bfs,
    naive_path_count,
    naive_path_sum,
    reachable_set,
    shortest_temporal_path,
    temporal_distance,
)
from repro.exceptions import (
    ConvergenceError,
    GraphError,
    InactiveNodeError,
    InvalidTemporalPathError,
    IOFormatError,
    NodeNotFoundError,
    ReproError,
    RepresentationError,
    TimestampNotFoundError,
)
from repro.graph import (
    AdjacencyListEvolvingGraph,
    BaseEvolvingGraph,
    MatrixSequenceEvolvingGraph,
    SnapshotSequenceEvolvingGraph,
    StaticGraph,
    TemporalEdgeList,
    static_bfs,
    to_adjacency_list,
    to_edge_list,
    to_matrix_sequence,
    to_snapshot_sequence,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "datasets",
    "algorithms",
    "analysis",
    "engine",
    "generators",
    "io",
    "linalg",
    "parallel",
    # core API
    "TemporalNode",
    "TemporalPath",
    "BFSResult",
    "evolving_bfs",
    "evolving_bfs_tree",
    "multi_source_bfs",
    "backward_bfs",
    "algebraic_bfs",
    "algebraic_bfs_blocked",
    "build_static_expansion",
    "expansion_bfs",
    "StaticExpansion",
    "build_block_adjacency",
    "BlockAdjacencyMatrix",
    "forward_neighbors",
    "k_forward_neighbors",
    "enumerate_temporal_paths",
    "shortest_temporal_path",
    "count_temporal_paths",
    "count_temporal_paths_by_hops",
    "naive_path_sum",
    "naive_path_count",
    "temporal_distance",
    "reachable_set",
    # graph representations
    "BaseEvolvingGraph",
    "AdjacencyListEvolvingGraph",
    "TemporalEdgeList",
    "MatrixSequenceEvolvingGraph",
    "SnapshotSequenceEvolvingGraph",
    "StaticGraph",
    "static_bfs",
    "to_adjacency_list",
    "to_edge_list",
    "to_matrix_sequence",
    "to_snapshot_sequence",
    # exceptions
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "TimestampNotFoundError",
    "InactiveNodeError",
    "InvalidTemporalPathError",
    "RepresentationError",
    "ConvergenceError",
    "IOFormatError",
]
