"""Reading and writing temporal edge lists.

The de-facto interchange format for temporal graphs (used by SNAP, Koblenz /
KONECT and most published datasets) is a plain text file with one edge per
line: ``source destination timestamp``, whitespace- or comma-separated,
optionally with comment lines starting with ``#`` or ``%``.  These routines
read and write that format, preserving integer node/timestamp labels when
possible and falling back to strings otherwise.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, TextIO

from repro.exceptions import IOFormatError
from repro.graph.adjacency_list import AdjacencyListEvolvingGraph
from repro.graph.base import BaseEvolvingGraph, TemporalEdgeTuple

__all__ = [
    "read_temporal_edge_list",
    "write_temporal_edge_list",
    "parse_temporal_edge_lines",
]

_COMMENT_PREFIXES = ("#", "%", "//")


def _coerce(token: str):
    """Interpret a token as int, then float, then string."""
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


def parse_temporal_edge_lines(
    lines: Iterable[str],
    *,
    delimiter: str | None = None,
) -> list[TemporalEdgeTuple]:
    """Parse an iterable of text lines into ``(u, v, t)`` triples.

    Blank lines and comment lines (``#``, ``%``, ``//``) are skipped.  Lines
    with more than three fields keep only the first three (extra columns such
    as edge weights are ignored); lines with fewer than three raise
    :class:`IOFormatError`.
    """
    triples: list[TemporalEdgeTuple] = []
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        parts = line.split(delimiter) if delimiter else line.replace(",", " ").split()
        if len(parts) < 3:
            raise IOFormatError(
                f"line {line_number}: expected 'source destination timestamp', "
                f"got {raw!r}"
            )
        u, v, t = (_coerce(p) for p in parts[:3])
        triples.append((u, v, t))
    return triples


def read_temporal_edge_list(
    path: str | Path | TextIO,
    *,
    directed: bool = True,
    delimiter: str | None = None,
) -> AdjacencyListEvolvingGraph:
    """Read a temporal edge-list file into an evolving graph."""
    if isinstance(path, (str, Path)):
        with open(path, "r", encoding="utf-8") as handle:
            triples = parse_temporal_edge_lines(handle, delimiter=delimiter)
    else:
        triples = parse_temporal_edge_lines(path, delimiter=delimiter)
    return AdjacencyListEvolvingGraph(triples, directed=directed)


def write_temporal_edge_list(
    graph: BaseEvolvingGraph,
    path: str | Path | TextIO,
    *,
    delimiter: str = "\t",
    header: bool = True,
) -> int:
    """Write an evolving graph as a temporal edge list; returns edges written."""

    def _write(handle: TextIO) -> int:
        count = 0
        if header:
            handle.write(
                f"# temporal edge list: "
                f"source{delimiter}destination{delimiter}timestamp\n"
            )
            handle.write(f"# directed={graph.is_directed}\n")
        for u, v, t in graph.temporal_edges():
            handle.write(f"{u}{delimiter}{v}{delimiter}{t}\n")
            count += 1
        return count

    if isinstance(path, (str, Path)):
        with open(path, "w", encoding="utf-8") as handle:
            return _write(handle)
    return _write(path)
