"""JSON (de)serialisation of evolving graphs and BFS results.

A small, dependency-free persistence layer so experiments can checkpoint
their inputs and outputs (the benchmark harness stores measured scaling
curves this way).  The format is intentionally simple and explicit:

.. code-block:: json

    {
      "format": "repro-evolving-graph",
      "version": 1,
      "directed": true,
      "timestamps": ["t1", "t2"],
      "edges": [["1", "2", "t1"], ...],
      "label_types": {"nodes": "int", "times": "str"}
    }

Node and timestamp labels are stored as strings together with a type tag so
integer labels round-trip exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, TextIO

from repro.core.bfs import BFSResult
from repro.exceptions import IOFormatError
from repro.graph.adjacency_list import AdjacencyListEvolvingGraph
from repro.graph.base import BaseEvolvingGraph

__all__ = [
    "evolving_graph_to_dict",
    "evolving_graph_from_dict",
    "save_evolving_graph",
    "load_evolving_graph",
    "bfs_result_to_dict",
]

_FORMAT = "repro-evolving-graph"
_VERSION = 1


def _label_type(values) -> str:
    types = {type(v) for v in values}
    if types <= {int}:
        return "int"
    if types <= {float, int}:
        return "float"
    return "str"


def _encode(value) -> str:
    return str(value)


def _decode(value: str, kind: str):
    if kind == "int":
        return int(value)
    if kind == "float":
        return float(value)
    return value


def evolving_graph_to_dict(graph: BaseEvolvingGraph) -> dict[str, Any]:
    """Serialise an evolving graph to a JSON-compatible dictionary."""
    nodes = sorted(graph.nodes(), key=repr)
    times = list(graph.timestamps)
    node_kind = _label_type(nodes) if nodes else "int"
    time_kind = _label_type(times) if times else "int"
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "directed": graph.is_directed,
        "timestamps": [_encode(t) for t in times],
        "edges": [
            [_encode(u), _encode(v), _encode(t)] for u, v, t in graph.temporal_edges()
        ],
        "label_types": {"nodes": node_kind, "times": time_kind},
    }


def evolving_graph_from_dict(data: dict[str, Any]) -> AdjacencyListEvolvingGraph:
    """Reconstruct an evolving graph from :func:`evolving_graph_to_dict` output."""
    if data.get("format") != _FORMAT:
        raise IOFormatError(f"not a {_FORMAT} document: format={data.get('format')!r}")
    if int(data.get("version", -1)) != _VERSION:
        raise IOFormatError(f"unsupported version {data.get('version')!r}")
    label_types = data.get("label_types", {})
    node_kind = label_types.get("nodes", "str")
    time_kind = label_types.get("times", "str")
    timestamps = [_decode(t, time_kind) for t in data.get("timestamps", [])]
    edges = [
        (_decode(u, node_kind), _decode(v, node_kind), _decode(t, time_kind))
        for u, v, t in data.get("edges", [])
    ]
    return AdjacencyListEvolvingGraph(
        edges, directed=bool(data.get("directed", True)), timestamps=timestamps
    )


def save_evolving_graph(graph: BaseEvolvingGraph, path: str | Path | TextIO) -> None:
    """Write an evolving graph as JSON to ``path`` (file path or open text handle)."""
    data = evolving_graph_to_dict(graph)
    if isinstance(path, (str, Path)):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2)
    else:
        json.dump(data, path, indent=2)


def load_evolving_graph(path: str | Path | TextIO) -> AdjacencyListEvolvingGraph:
    """Load an evolving graph saved by :func:`save_evolving_graph`."""
    if isinstance(path, (str, Path)):
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    else:
        data = json.load(path)
    return evolving_graph_from_dict(data)


def bfs_result_to_dict(result: BFSResult) -> dict[str, Any]:
    """Serialise a BFS result (root, distances) to a JSON-compatible dictionary."""
    root = result.root
    if root and isinstance(root, tuple) and root and isinstance(root[0], tuple):
        root_repr: Any = [[_encode(v), _encode(t)] for v, t in root]
    else:
        root_repr = [_encode(root[0]), _encode(root[1])]
    return {
        "format": "repro-bfs-result",
        "version": 1,
        "root": root_repr,
        "reached": [
            {"node": _encode(v), "time": _encode(t), "distance": d}
            for (v, t), d in sorted(
                result.reached.items(), key=lambda kv: (kv[1], repr(kv[0]))
            )
        ],
    }
