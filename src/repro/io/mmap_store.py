"""Memory-mapped shard store: compiled operators on disk, paged in on demand.

The second storage regime of :class:`~repro.graph.sharded.ShardedTemporalGraph`
(the first slices an in-memory artifact): every shard's per-snapshot CSR
buffers live in flat binary files inside a *versioned* directory, and
:func:`load_sharded` reopens them through ``np.memmap`` — so a graph whose
monolithic compilation would exceed a process's memory budget streams
through the page cache one shard at a time.

Directory layout (the storage spec the README documents)::

    <root>/
      v<mutation_version>/
        manifest.json                     format tag, labels, times, layout
        active_mask.bin                   (T, N) bool, C order
        shard-0000.forward.data.bin       concatenated per-snapshot CSR data
        shard-0000.forward.indices.bin    ... column indices
        shard-0000.forward.indptr.bin     T_i stacked (N + 1)-long indptrs
        shard-0000.backward.*.bin         transposes, when stored
        ...

Buffers are canonicalized to int32 (the compiler's native dtype); snapshot
``k`` of a shard owns ``data[offsets[k]:offsets[k+1]]`` per the manifest's
per-snapshot nnz list, so reconstruction wraps the mapped buffers in
``csr_matrix`` views without copying.  Each mutation version gets its own
``v<N>`` directory: a store never describes two graph states at once, and
:meth:`ShardedTemporalGraph.is_current
<repro.graph.sharded.ShardedTemporalGraph.is_current>` (or
:meth:`ShardedSweepDriver.require_current
<repro.engine.sharded_sweep.ShardedSweepDriver.require_current>`) raises on
staleness exactly as the in-memory dispatch caches do.

Write with :class:`ShardedStoreWriter` (streaming, one snapshot at a time,
cutting shards on a byte budget — compilation never holds more than one
shard) or the :func:`save_sharded` convenience over an existing artifact.
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graph.base import Node, Time
from repro.graph.sharded import ShardedTemporalGraph

__all__ = [
    "ShardedStoreWriter",
    "save_sharded",
    "load_sharded",
    "patch_sharded_store",
    "STORE_FORMAT",
]

STORE_FORMAT = "repro-sharded-v1"

_COMPONENTS = ("data", "indices", "indptr")


def _shard_file(directory: str, shard: int, stack: str, component: str) -> str:
    return os.path.join(directory, f"shard-{shard:04d}.{stack}.{component}.bin")


def _active_row(operator: sp.csr_matrix) -> np.ndarray:
    """One snapshot's activeness row off its operator (Definition 3)."""
    active = np.diff(operator.indptr) > 0
    active[operator.indices] = True
    return active


def _json_roundtrips(value: object) -> bool:
    try:
        return json.loads(json.dumps(value)) == value
    except (TypeError, ValueError):
        return False


def _operator_buffers(operator: sp.csr_matrix) -> dict[str, np.ndarray]:
    return {
        "data": np.asarray(operator.data, dtype=np.int32),
        "indices": np.asarray(operator.indices, dtype=np.int32),
        "indptr": np.asarray(operator.indptr, dtype=np.int32),
    }


class ShardedStoreWriter:
    """Stream compiled snapshots to a versioned on-disk shard store.

    Feed snapshots in time order via :meth:`add_snapshot`; a new shard is
    cut whenever adding the next snapshot would push the current shard past
    ``shard_byte_budget`` (when set), or at the caller's explicit
    :meth:`cut_shard` calls.  Only the *current* shard's buffers are held in
    memory, so writing a graph much larger than RAM needs only
    one-shard-plus-mask working space.  :meth:`finalize` writes the manifest
    and activeness mask and returns the version directory.
    """

    def __init__(
        self,
        root: str,
        *,
        node_labels: Sequence[Node],
        is_directed: bool,
        mutation_version: int,
        shard_byte_budget: int | None = None,
        include_backward: bool = False,
    ) -> None:
        labels = list(node_labels)
        if not _json_roundtrips(labels):
            raise GraphError(
                "node labels must survive a JSON round trip to be stored; "
                "got labels that do not"
            )
        if shard_byte_budget is not None and shard_byte_budget < 1:
            raise GraphError("shard_byte_budget must be positive")
        self._root = root
        self._labels = labels
        self._n = len(labels)
        self._directed = bool(is_directed)
        self._version = int(mutation_version)
        self._budget = shard_byte_budget
        self._backward = bool(include_backward)
        self._directory = os.path.join(root, f"v{self._version}")
        os.makedirs(self._directory, exist_ok=True)
        self._times: list[Time] = []
        self._active_rows: list[np.ndarray] = []
        self._boundaries: list[tuple[int, int]] = []
        self._shards: list[dict] = []
        self._pending: list[dict[str, dict[str, np.ndarray]]] = []
        self._pending_bytes = 0
        self._pending_nnz: list[int] = []
        self._shard_start = 0
        self._finalized = False

    @property
    def directory(self) -> str:
        """The version directory this writer populates."""
        return self._directory

    def add_snapshot(
        self,
        time: Time,
        forward_operator: sp.csr_matrix,
        *,
        backward_operator: sp.csr_matrix | None = None,
        active_row: np.ndarray | None = None,
    ) -> None:
        """Append one snapshot's operator(s), cutting a shard on budget.

        ``backward_operator`` is required exactly when the writer was
        configured with ``include_backward`` on a directed store (undirected
        transposes alias the forward operators and are never stored twice).
        """
        if self._finalized:
            raise GraphError("writer is already finalized")
        if forward_operator.shape != (self._n, self._n):
            raise GraphError(
                f"operator shape {forward_operator.shape} does not match "
                f"the {self._n}-node universe"
            )
        if not _json_roundtrips(time):
            raise GraphError(f"time label {time!r} does not survive JSON")
        stacks = {"forward": _operator_buffers(forward_operator)}
        if self._backward and self._directed:
            if backward_operator is None:
                backward_operator = forward_operator.T.tocsr()
            stacks["backward"] = _operator_buffers(backward_operator)
        snapshot_bytes = sum(
            buf.nbytes for stack in stacks.values() for buf in stack.values()
        )
        if (
            self._budget is not None
            and self._pending
            and self._pending_bytes + snapshot_bytes > self._budget
        ):
            self.cut_shard()
        if active_row is None:
            active_row = _active_row(forward_operator)
        self._times.append(time)
        self._active_rows.append(np.asarray(active_row, dtype=bool))
        self._pending.append(stacks)
        self._pending_bytes += snapshot_bytes
        self._pending_nnz.append(int(forward_operator.nnz))

    def cut_shard(self) -> None:
        """Flush the pending snapshots as one shard (no-op when empty)."""
        if not self._pending:
            return
        shard_index = len(self._shards)
        stacks = ["forward"] + (
            ["backward"] if self._backward and self._directed else []
        )
        total_bytes = 0
        for stack in stacks:
            for component in _COMPONENTS:
                path = _shard_file(self._directory, shard_index, stack, component)
                buffers = [snap[stack][component] for snap in self._pending]
                merged = (
                    np.concatenate(buffers)
                    if buffers
                    else np.empty(0, dtype=np.int32)
                )
                merged.tofile(path)
                total_bytes += merged.nbytes
        stop = self._shard_start + len(self._pending)
        self._boundaries.append((self._shard_start, stop))
        self._shards.append(
            {"snapshot_nnz": list(self._pending_nnz), "bytes": total_bytes}
        )
        self._shard_start = stop
        self._pending = []
        self._pending_bytes = 0
        self._pending_nnz = []

    def finalize(self) -> str:
        """Flush the last shard, write mask + manifest; returns the directory."""
        if self._finalized:
            raise GraphError("writer is already finalized")
        self.cut_shard()
        if not self._times:
            raise GraphError("cannot finalize a store with no snapshots")
        self._finalized = True
        mask = np.stack(self._active_rows)
        mask.tofile(os.path.join(self._directory, "active_mask.bin"))
        manifest = {
            "format": STORE_FORMAT,
            "mutation_version": self._version,
            "is_directed": self._directed,
            "num_nodes": self._n,
            "node_labels": self._labels,
            "times": self._times,
            "boundaries": [list(b) for b in self._boundaries],
            "include_backward": self._backward and self._directed,
            "shards": self._shards,
        }
        manifest_path = os.path.join(self._directory, "manifest.json")
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        return self._directory


def save_sharded(
    compiled,
    root: str,
    *,
    num_shards: int | None = None,
    shard_byte_budget: int | None = None,
    include_backward: bool | None = None,
) -> str:
    """Write an existing compiled artifact to a versioned shard store.

    Boundaries come from the byte budget (streaming cut) or, with
    ``num_shards``, from the nnz-weighted contiguous layout shared with
    :meth:`ShardedTemporalGraph.from_compiled
    <repro.graph.sharded.ShardedTemporalGraph.from_compiled>`.  By default
    the backward stack is stored iff the artifact has materialized distinct
    transposes.  Returns the version directory.
    """
    if include_backward is None:
        include_backward = compiled.transposes_built and compiled.is_directed
    writer = ShardedStoreWriter(
        root,
        node_labels=compiled.node_labels,
        is_directed=compiled.is_directed,
        mutation_version=compiled.mutation_version,
        shard_byte_budget=shard_byte_budget,
        include_backward=include_backward,
    )
    cuts: set[int] = set()
    if num_shards is not None:
        from repro.graph.sharded import compute_shard_layout

        cuts = {start for start, _ in compute_shard_layout(compiled, num_shards)}
    forward = compiled.forward_operators
    backward = (
        compiled.backward_operators
        if include_backward and compiled.is_directed
        else None
    )
    mask = compiled.active_mask
    for k, time in enumerate(compiled.times):
        if k in cuts:
            writer.cut_shard()
        writer.add_snapshot(
            time,
            forward[k],
            backward_operator=backward[k] if backward is not None else None,
            active_row=mask[k],
        )
    return writer.finalize()


def _link_or_copy(source: str, destination: str) -> None:
    """Hard-link ``source`` at ``destination``; copy when linking is unsupported."""
    if os.path.exists(destination):
        os.remove(destination)
    try:
        os.link(source, destination)
    except OSError:  # cross-device, FAT, or a filesystem without links
        shutil.copyfile(source, destination)


def patch_sharded_store(
    compiled,
    previous,
    root: str,
) -> str:
    """Write ``compiled``'s version directory by patching the previous one.

    The store-side twin of the in-memory delta re-shard
    (:meth:`~repro.graph.sharded.ShardedTemporalGraph.recompile`):
    ``previous`` is the compiled artifact whose version directory already
    lives under ``root``, and ``compiled`` its delta recompilation — the two
    share each untouched snapshot's operator *object*, which is how this
    function decides, without reading a byte of shard data, that a shard is
    clean.  Clean shards' binary files are hard-linked from the previous
    version directory into the new ``v<mutation_version>`` one (falling
    back to copies on filesystems without links); only dirty shards'
    buffers, the activeness mask and the manifest are rewritten.  A
    streamed mutation therefore costs O(dirty shard bytes) of write I/O,
    and both version directories stay complete and self-describing.

    Falls back to a full :func:`save_sharded` (preserving the stored shard
    count) when the base directory is missing or describes a different
    universe, version or backward-stack configuration.  Returns the new
    version directory.
    """
    base_dir = os.path.join(root, f"v{int(previous.mutation_version)}")
    manifest_path = os.path.join(base_dir, "manifest.json")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError):
        manifest = None
    include_backward = compiled.transposes_built and compiled.is_directed
    if (
        manifest is None
        or manifest.get("format") != STORE_FORMAT
        or manifest["mutation_version"] != previous.mutation_version
        or manifest["node_labels"] != list(compiled.node_labels)
        or manifest["times"] != list(compiled.times)
        or manifest["is_directed"] != compiled.is_directed
        or manifest["include_backward"] != include_backward
        or len(previous.times) != len(compiled.times)
    ):
        num_shards = len(manifest["boundaries"]) if manifest is not None else 1
        return save_sharded(compiled, root, num_shards=num_shards)
    if compiled.mutation_version == previous.mutation_version:
        return base_dir
    directory = os.path.join(root, f"v{int(compiled.mutation_version)}")
    os.makedirs(directory, exist_ok=True)
    stacks = ["forward"] + (["backward"] if include_backward else [])
    forward = compiled.forward_operators
    prev_forward = previous.forward_operators
    backward = compiled.backward_operators if include_backward else None
    shards_meta = []
    for shard_index, (start, stop) in enumerate(manifest["boundaries"]):
        clean = all(forward[k] is prev_forward[k] for k in range(start, stop))
        if clean:
            for stack in stacks:
                for component in _COMPONENTS:
                    _link_or_copy(
                        _shard_file(base_dir, shard_index, stack, component),
                        _shard_file(directory, shard_index, stack, component),
                    )
            shards_meta.append(manifest["shards"][shard_index])
            continue
        total_bytes = 0
        for stack in stacks:
            operators = forward if stack == "forward" else backward
            for component in _COMPONENTS:
                buffers = [
                    _operator_buffers(operators[k])[component]
                    for k in range(start, stop)
                ]
                merged = (
                    np.concatenate(buffers)
                    if buffers
                    else np.empty(0, dtype=np.int32)
                )
                merged.tofile(
                    _shard_file(directory, shard_index, stack, component)
                )
                total_bytes += merged.nbytes
        shards_meta.append(
            {
                "snapshot_nnz": [int(forward[k].nnz) for k in range(start, stop)],
                "bytes": total_bytes,
            }
        )
    mask = np.ascontiguousarray(np.asarray(compiled.active_mask, dtype=bool))
    mask.tofile(os.path.join(directory, "active_mask.bin"))
    manifest = dict(manifest)
    manifest["mutation_version"] = int(compiled.mutation_version)
    manifest["shards"] = shards_meta
    with open(os.path.join(directory, "manifest.json"), "w", encoding="utf-8") as f:
        json.dump(manifest, f)
    return directory


class _MmapShardStore:
    """Reopens shards from a version directory as memory-mapped CSR stacks."""

    def __init__(self, directory: str, manifest: dict) -> None:
        self._directory = directory
        self._manifest = manifest
        self._n = int(manifest["num_nodes"])

    def shard_bytes(self, index: int) -> int:
        return int(self._manifest["shards"][index]["bytes"])

    def _mapped(self, index: int, stack: str, component: str, length: int):
        if length == 0:
            return np.empty(0, dtype=np.int32)
        path = _shard_file(self._directory, index, stack, component)
        return np.memmap(path, dtype=np.int32, mode="r", shape=(length,))

    def open_shard(self, index: int):
        from repro.graph.compiled import CompiledTemporalGraph

        manifest = self._manifest
        n = self._n
        start, stop = manifest["boundaries"][index]
        shard_meta = manifest["shards"][index]
        nnz = [int(x) for x in shard_meta["snapshot_nnz"]]
        t_count = stop - start
        offsets = np.concatenate([[0], np.cumsum(nnz)])
        total_nnz = int(offsets[-1])
        stacks = ["forward"] + (["backward"] if manifest["include_backward"] else [])
        operators: dict[str, list[sp.csr_matrix]] = {}
        for stack in stacks:
            data = self._mapped(index, stack, "data", total_nnz)
            indices = self._mapped(index, stack, "indices", total_nnz)
            indptr = self._mapped(index, stack, "indptr", t_count * (n + 1))
            mats = []
            for k in range(t_count):
                lo, hi = int(offsets[k]), int(offsets[k + 1])
                mats.append(
                    sp.csr_matrix(
                        (
                            data[lo:hi],
                            indices[lo:hi],
                            indptr[k * (n + 1) : (k + 1) * (n + 1)],
                        ),
                        shape=(n, n),
                    )
                )
            operators[stack] = mats
        mask = self._active_mask()[start:stop]
        return CompiledTemporalGraph(
            node_labels=manifest["node_labels"],
            times=manifest["times"][start:stop],
            forward_operators=operators["forward"],
            is_directed=manifest["is_directed"],
            mutation_version=manifest["mutation_version"],
            backward_operators=operators.get("backward"),
            active_mask=mask,
        )

    def _active_mask(self) -> np.ndarray:
        t_count = len(self._manifest["times"])
        path = os.path.join(self._directory, "active_mask.bin")
        return np.memmap(path, dtype=bool, mode="r", shape=(t_count, self._n))


def load_sharded(root: str, *, version: int | None = None) -> ShardedTemporalGraph:
    """Reopen a stored artifact as a lazily memory-mapped sharded graph.

    ``version`` picks a specific ``v<N>`` directory (default: the highest
    present).  Shards materialize on first
    :meth:`~repro.graph.sharded.ShardedTemporalGraph.shard` access and can
    be :meth:`released <repro.graph.sharded.ShardedTemporalGraph.release>`
    between sweeps — the serial driver's out-of-core schedule.
    """
    if version is None:
        candidates = []
        if os.path.isdir(root):
            for name in os.listdir(root):
                if name.startswith("v") and name[1:].isdigit():
                    candidates.append(int(name[1:]))
        if not candidates:
            raise GraphError(f"no stored shard versions under {root!r}")
        version = max(candidates)
    directory = os.path.join(root, f"v{int(version)}")
    manifest_path = os.path.join(directory, "manifest.json")
    if not os.path.isfile(manifest_path):
        raise GraphError(f"no shard store at {directory!r}")
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format") != STORE_FORMAT:
        raise GraphError(
            f"unrecognized shard-store format {manifest.get('format')!r} "
            f"(expected {STORE_FORMAT!r})"
        )
    store = _MmapShardStore(directory, manifest)
    return ShardedTemporalGraph(
        node_labels=manifest["node_labels"],
        times=manifest["times"],
        boundaries=[tuple(b) for b in manifest["boundaries"]],
        mutation_version=manifest["mutation_version"],
        is_directed=manifest["is_directed"],
        active_mask=store._active_mask(),
        shard_nnz=[sum(s["snapshot_nnz"]) for s in manifest["shards"]],
        store=store,
    )
