"""Input/output: edge-list files, JSON (de)serialisation, on-disk shard stores."""

from repro.io.edge_list_io import (
    parse_temporal_edge_lines,
    read_temporal_edge_list,
    write_temporal_edge_list,
)
from repro.io.mmap_store import (
    STORE_FORMAT,
    ShardedStoreWriter,
    load_sharded,
    patch_sharded_store,
    save_sharded,
)
from repro.io.serialization import (
    bfs_result_to_dict,
    evolving_graph_from_dict,
    evolving_graph_to_dict,
    load_evolving_graph,
    save_evolving_graph,
)

__all__ = [
    "read_temporal_edge_list",
    "write_temporal_edge_list",
    "parse_temporal_edge_lines",
    "evolving_graph_to_dict",
    "evolving_graph_from_dict",
    "save_evolving_graph",
    "load_evolving_graph",
    "bfs_result_to_dict",
    "STORE_FORMAT",
    "ShardedStoreWriter",
    "save_sharded",
    "load_sharded",
    "patch_sharded_store",
]
