"""Built-in example datasets: the paper's worked examples as ready-made graphs.

These fixtures are used throughout the examples, tests and micro-benchmarks
to reproduce the exact numbers printed in the paper:

* :func:`figure1_graph` — the 3-node, 3-timestamp evolving digraph of
  Figure 1 (edges ``1->2`` at ``t1``, ``1->3`` at ``t2``, ``2->3`` at ``t3``).
* :func:`figure1_adjacency_sequence` — its per-snapshot adjacency matrices
  as printed at the start of Section III-A.
* :func:`figure4_expected_matrix` — the 6x6 block adjacency matrix ``A_3``
  printed in Section III-C, with its node ordering.
* :func:`figure4_expected_iterates` — the published power-iterate sequence
  starting from ``b = e_1``.
* :func:`message_game_graph` — the three-player message game of the
  introduction, parameterised by the order in which the players talk.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.adjacency_list import AdjacencyListEvolvingGraph

__all__ = [
    "FIGURE1_TIMESTAMPS",
    "figure1_graph",
    "figure1_adjacency_sequence",
    "figure4_node_order",
    "figure4_expected_matrix",
    "figure4_expected_iterates",
    "figure2_expected_paths",
    "message_game_graph",
]

#: Time labels used by the Figure-1 example, in order.
FIGURE1_TIMESTAMPS: tuple[str, str, str] = ("t1", "t2", "t3")


def figure1_graph() -> AdjacencyListEvolvingGraph:
    """The evolving directed graph of Figure 1.

    Three nodes (1, 2, 3) and three snapshots: edge ``1 -> 2`` at ``t1``,
    ``1 -> 3`` at ``t2`` and ``2 -> 3`` at ``t3``.
    """
    return AdjacencyListEvolvingGraph(
        [(1, 2, "t1"), (1, 3, "t2"), (2, 3, "t3")],
        directed=True,
        timestamps=FIGURE1_TIMESTAMPS,
    )


def figure1_adjacency_sequence() -> list[np.ndarray]:
    """The per-snapshot one-sided adjacency matrices printed in Section III-A."""
    a1 = np.array([[0, 1, 0], [0, 0, 0], [0, 0, 0]], dtype=np.int64)
    a2 = np.array([[0, 0, 1], [0, 0, 0], [0, 0, 0]], dtype=np.int64)
    a3 = np.array([[0, 0, 0], [0, 0, 1], [0, 0, 0]], dtype=np.int64)
    return [a1, a2, a3]


def figure4_node_order() -> list[tuple[int, str]]:
    """The ordering of active temporal nodes used for ``A_3`` in Section III-C."""
    return [(1, "t1"), (2, "t1"), (1, "t2"), (3, "t2"), (2, "t3"), (3, "t3")]


def figure4_expected_matrix() -> np.ndarray:
    """The 6x6 block adjacency matrix ``A_3`` printed in Section III-C."""
    return np.array(
        [
            [0, 1, 1, 0, 0, 0],
            [0, 0, 0, 0, 1, 0],
            [0, 0, 0, 1, 0, 0],
            [0, 0, 0, 0, 0, 1],
            [0, 0, 0, 0, 0, 1],
            [0, 0, 0, 0, 0, 0],
        ],
        dtype=np.int64,
    )


def figure4_expected_iterates() -> list[np.ndarray]:
    """The published iterate sequence ``b, A^T b, (A^T)^2 b, (A^T)^3 b, (A^T)^4 b``
    starting from ``b = e_1`` (the temporal node ``(1, t1)``)."""
    return [
        np.array([1, 0, 0, 0, 0, 0], dtype=np.int64),
        np.array([0, 1, 1, 0, 0, 0], dtype=np.int64),
        np.array([0, 0, 0, 1, 1, 0], dtype=np.int64),
        np.array([0, 0, 0, 0, 0, 2], dtype=np.int64),
        np.array([0, 0, 0, 0, 0, 0], dtype=np.int64),
    ]


def figure2_expected_paths() -> list[list[tuple[int, str]]]:
    """The two length-4 temporal paths from ``(1, t1)`` to ``(3, t3)`` shown in Figure 2."""
    return [
        [(1, "t1"), (1, "t2"), (3, "t2"), (3, "t3")],
        [(1, "t1"), (2, "t1"), (2, "t3"), (3, "t3")],
    ]


def message_game_graph(
    talk_order: Sequence[tuple[int, int]] = ((1, 2), (2, 3)),
) -> AdjacencyListEvolvingGraph:
    """The three-player message game of the introduction as an evolving graph.

    Players 1, 2, 3 each hold a message; at turn ``k`` the pair
    ``talk_order[k] = (speaker, listener)`` communicates, i.e. a directed edge
    ``speaker -> listener`` exists at time ``k``.  Player ``p`` can collect
    message ``m`` of player ``q`` exactly when ``(p, t_last)`` is reachable
    from ``(q, t_first_talk_of_q)`` — which the evolving-graph BFS decides.

    The default order ``1 talks to 2, then 2 talks to 3`` lets player 3 win;
    the order ``(2, 3), (1, 2)`` makes message ``a`` unreachable for player 3,
    exactly as the introduction describes.
    """
    edges = [
        (speaker, listener, turn)
        for turn, (speaker, listener) in enumerate(talk_order)
    ]
    return AdjacencyListEvolvingGraph(
        edges,
        directed=True,
        timestamps=list(range(len(list(talk_order)))),
    )
