"""Concurrent query serving over the compiled-kernel engine.

The layer above :mod:`repro.engine` on the road to the "millions of users"
north star: :class:`QueryServer` accepts query descriptors
(:mod:`repro.algorithms.queries`) from many threads, dedupes and caches them
against the graph's exact ``mutation_version``, coalesces same-shape queries
into shared ``(T, N, R)`` block sweeps, and admits streamed mutations
between micro-batches through the delta-recompile path.

>>> from repro.serving import QueryServer
>>> from repro.algorithms.queries import BFSQuery, EarliestArrivalQuery
>>> with QueryServer(graph) as server:                        # doctest: +SKIP
...     fut = server.submit(BFSQuery(root=("a", 0)))
...     ea = server.query(EarliestArrivalQuery(source=("a", 0)))
...     server.mutate([("a", "b", 1)]).result()
"""

from repro.serving.coalesce import GroupOutcome, decode_warm_block, execute_group
from repro.serving.server import (
    ADMISSION_POLICIES,
    LatencyHistogram,
    QueryServer,
    ServingStats,
)

__all__ = [
    "ADMISSION_POLICIES",
    "GroupOutcome",
    "LatencyHistogram",
    "QueryServer",
    "ServingStats",
    "decode_warm_block",
    "execute_group",
]
