"""The thread-safe query server: micro-batching, coalescing and result caching.

:class:`QueryServer` turns the engine — a fast *library* of batched kernels —
into a fast *system*: many client threads submit
:class:`~repro.algorithms.queries.Query` descriptors concurrently, and the
server answers them with far less kernel work than one sweep per query:

1. **result cache** — a bounded LRU keyed on ``(mutation_version,
   cache_key)``.  ``mutation_version`` is exact (any in-place edit bumps
   it), so a hit is always safe to serve without touching a kernel; repeated
   and Zipf-skewed traffic is mostly absorbed here.
2. **in-flight dedup** — identical queries submitted while one of them is
   still being computed attach to the same pending computation.
3. **micro-batch coalescing** — queries that arrived within one batching
   window and share a :meth:`~repro.algorithms.queries.Query.sweep_key` are
   executed as *one* ``(T, N, R)`` block sweep (roots become columns of the
   CSR × dense-block products; see :mod:`repro.serving.coalesce`), and the
   per-query answers are scattered back to their futures.
4. **single-writer mutations** — :meth:`mutate` enqueues an edge batch that
   the dispatcher applies *between* micro-batches: the graph is edited, the
   compiled artifact is refreshed through the PR-4 delta path
   (:meth:`~repro.graph.compiled.CompiledTemporalGraph.recompile` — only
   touched snapshots rebuild), and every cache entry whose version no longer
   matches is either **warm-start patched** forward or invalidated.  Queries
   therefore always execute against a consistent ``(graph, artifact)`` pair.

Overload robustness (this PR) adds three mechanisms on the admission side:

* **admission control** — ``max_pending`` bounds the submission queue; the
  ``admission`` policy decides what happens at the bound: ``"reject"``
  raises :class:`~repro.exceptions.ServerOverloadedError` synchronously,
  ``"shed-oldest"`` evicts the lowest-priority oldest pending query (its
  future fails with the same error, ``shed=True``) to make room, and
  ``"block"`` parks the submitting thread until the dispatcher drains.
* **per-query deadlines** — ``submit(query, deadline_s=...)`` stamps an
  absolute deadline at admission.  The dispatcher drops queries whose every
  attached future has already expired *before* spending sweep columns on
  them (futures fail with :class:`~repro.exceptions.DeadlineExceededError`),
  and the micro-batch gathering window never waits past the earliest
  pending deadline.  A query that expires while its sweep runs still fails,
  flagged ``swept=True``.
* **warm-start invalidation** — mutation batches do not prune the forward
  frontier-family cache entries: their retained ``(T, N)`` distance blocks
  are carried across the mutation in two sound phases driven by the
  graph's signed mutation journal.  Removals are folded in first with the
  engine's increase-aware shrink re-sweep
  (:meth:`~repro.engine.frontier.FrontierKernel.shrink_distance_blocks`)
  against the mid-batch artifact, then insertions run the decrease-only
  re-sweep
  (:meth:`~repro.engine.frontier.FrontierKernel.patch_distance_blocks`)
  against the final one, and every entry is re-decoded through the exact
  coalesce readouts — so patched answers are bit-identical to
  recomputation at the new version, for pure-insert, pure-remove and mixed
  batches alike.  Entries whose artifact axes changed (a node or timestamp
  appeared or vanished) and entries whose search root a removal
  deactivated keep the exact prune semantics.

Freshness contract: a query is answered at *some* mutation version at least
as new as the one current when it was submitted (the usual serving model);
:meth:`join` quiesces the server when a caller needs a fixed version.
Results may be shared between callers (cache hits hand out the same object)
— treat them as read-only.

Thread-safety: ``submit``/``query``/``mutate`` may be called from any number
of threads.  All kernel execution happens on the dispatcher thread (plus its
optional chunk fan-out pool), and the engine's dispatch cache is itself
lock-safe since this PR, so readers can also keep calling the plain
``repro.algorithms`` functions on the same graph between mutations.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field, fields
from typing import Iterable, Sequence

from repro.algorithms.queries import Query, Submission
from repro.engine.bitops import resolve_sweep_mode
from repro.exceptions import (
    DeadlineExceededError,
    GraphError,
    ServerOverloadedError,
)
from repro.graph.base import BaseEvolvingGraph, TemporalEdgeTuple
from repro.serving.coalesce import decode_warm_block, execute_group

__all__ = ["ADMISSION_POLICIES", "LatencyHistogram", "QueryServer", "ServingStats"]

#: Recognised values of the ``admission`` policy flag.
ADMISSION_POLICIES = ("reject", "shed-oldest", "block")


class LatencyHistogram:
    """Fixed log-spaced latency histogram (stdlib only, O(1) per record).

    Buckets are powers of two from 10 µs to ~10.5 s plus one overflow
    bucket; bucket ``i`` counts samples in ``(BOUNDS[i-1], BOUNDS[i]]``.
    Quantiles are read as the *upper bound* of the bucket containing the
    rank, so they over-estimate by at most one octave — plenty for the
    load-shedding reports this backs, with no per-sample storage.
    """

    #: Upper bucket bounds in seconds: 1e-5 * 2**i for i in 0..20.
    BOUNDS = tuple(1e-5 * 2.0**i for i in range(21))

    def __init__(self) -> None:
        self.counts = [0] * (len(self.BOUNDS) + 1)
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def record(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds
        self.counts[bisect.bisect_left(self.BOUNDS, seconds)] += 1

    def quantile(self, q: float) -> float | None:
        """Upper bound of the bucket holding the ``q``-quantile (``None`` if empty)."""
        if not 0.0 <= q <= 1.0:
            raise GraphError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return None
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return self.BOUNDS[i] if i < len(self.BOUNDS) else self.max_s
        return self.max_s

    def snapshot(self) -> dict:
        """Plain-dict copy (reports and assertions)."""
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.total_s / self.count if self.count else 0.0,
            "max_s": self.max_s,
            "p50_s": self.quantile(0.50),
            "p99_s": self.quantile(0.99),
            "counts": list(self.counts),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<LatencyHistogram n={self.count} max={self.max_s:.6f}s>"


@dataclass
class ServingStats:
    """Op-stats of one :class:`QueryServer` (the serving analogue of
    :class:`~repro.linalg.csr.OperationCounter`).

    ``sweeps``/``sweep_columns`` are what the coalescing tests assert on: a
    micro-batch of ``R`` same-shape queries must execute as one sweep of
    ``R`` columns, not ``R`` sweeps.  ``coalesced_queries`` counts queries
    that shared their sweep with at least one other query or rode an
    in-flight duplicate.

    Admission accounting: ``submitted`` counts every well-formed ``submit``
    call; ``admitted`` those that entered the serving pipeline (cache hit,
    in-flight join, enqueue, or expired-at-admission); ``rejected`` those
    refused synchronously by the ``"reject"`` policy; ``shed`` every future
    failed by ``"shed-oldest"`` eviction (queue victims, their in-flight
    joiners, and newcomers that out-prioritized nothing).  Deadline
    accounting: ``expired_before_sweep`` counts futures dropped without
    kernel work, ``expired_after_sweep`` those whose deadline passed while
    their shared sweep ran.  Every future that resolves exceptionally —
    group errors, shedding, expiry — also counts in ``failed``, so every
    non-rejected submission resolves exactly once:
    ``served + failed == submitted - rejected`` (self-shed newcomers fail
    without ever counting as ``admitted``).

    ``queue_depth_high_water`` is the deepest the submission queue has ever
    been; ``batch_queue_depths`` records the per-micro-batch high-water
    marks (most recent :data:`_DEPTH_SAMPLES` kept).  ``wait_latency``
    (admission → drain) and ``service_latency`` (drain → resolution) are
    :class:`LatencyHistogram` instances.  ``entries_patched`` counts cache
    entries carried across a mutation by the warm-start decrease-only
    re-sweep instead of being pruned (``entries_invalidated``).
    """

    submitted: int = 0
    admitted: int = 0
    served: int = 0
    failed: int = 0
    rejected: int = 0
    shed: int = 0
    expired_before_sweep: int = 0
    expired_after_sweep: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    inflight_joins: int = 0
    micro_batches: int = 0
    sweeps: int = 0
    sweep_columns: int = 0
    coalesced_queries: int = 0
    mutations: int = 0
    edges_streamed: int = 0
    entries_invalidated: int = 0
    entries_patched: int = 0
    queue_depth_high_water: int = 0
    batch_queue_depths: list = field(default_factory=list)
    wait_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    service_latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    def snapshot(self) -> dict:
        """A plain-dict copy (reports and assertions); histograms nest as dicts."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, list):
                out[f.name] = list(value)
            elif hasattr(value, "snapshot"):
                out[f.name] = value.snapshot()
            else:
                out[f.name] = value
        return out


#: Retained per-micro-batch queue-depth samples (oldest dropped beyond this).
_DEPTH_SAMPLES = 4096


@dataclass
class _Waiter:
    """One future attached to a pending computation, with its deadline stamps."""

    future: Future
    deadline: float | None  # absolute time.monotonic() deadline, None = none
    budget: float | None  # the submitted relative deadline_s (error text)
    submitted: float  # time.monotonic() admission stamp

    def expired(self, now: float) -> bool:
        return self.deadline is not None and self.deadline <= now


@dataclass
class _Ticket(_Waiter):
    """A queued query: the owning waiter plus its identity and priority."""

    query: Query = None
    key: tuple = None
    priority: int = 0
    live: list = field(default_factory=list)  # waiters kept past the drain gate


@dataclass
class _WarmState:
    """Warm-start sidecar of a cached frontier answer.

    ``block`` is the contiguous writable ``(T, N)`` int32 distance block the
    answer decodes from (shared between entries with equal roots, so a
    mutation patches each block once); ``surface`` the compiled artifact the
    block currently matches — a patch is legal only while the new artifact
    keeps those axes.
    """

    query: Query
    root: tuple
    block: object
    surface: object


@dataclass
class _CacheEntry:
    value: object
    warm: _WarmState | None = None


class _VersionedLRU:
    """Bounded LRU of ``(mutation_version, cache_key) -> _CacheEntry``.

    Not itself locked — the server serializes access under its own lock.
    ``get`` double-checks the version so a stale entry is never served even
    if pruning were to lag a mutation.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise GraphError(f"cache capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, version: int, key: tuple):
        full_key = (version, key)
        entry = self._entries.get(full_key)
        if entry is None:
            return None, False
        self._entries.move_to_end(full_key)
        return entry.value, True

    def put(self, version: int, key: tuple, value, warm: _WarmState | None = None):
        full_key = (version, key)
        self._entries[full_key] = _CacheEntry(value, warm)
        self._entries.move_to_end(full_key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def warm_entries(self, version: int) -> list[tuple[tuple, _CacheEntry]]:
        """The ``(cache_key, entry)`` pairs at ``version`` carrying warm state."""
        return [
            (full_key[1], entry)
            for full_key, entry in self._entries.items()
            if full_key[0] == version and entry.warm is not None
        ]

    def rekey(
        self, old_version: int, new_version: int, key: tuple, value, warm
    ) -> None:
        """Move one entry forward across a mutation (warm-start patching)."""
        self._entries.pop((old_version, key), None)
        self.put(new_version, key, value, warm=warm)

    def prune_stale(self, version: int) -> int:
        """Drop every entry whose version no longer matches; returns the count."""
        stale = [k for k in self._entries if k[0] != version]
        for k in stale:
            del self._entries[k]
        return len(stale)


class QueryServer:
    """Concurrent query-serving façade over one evolving graph.

    Parameters
    ----------
    graph:
        The evolving graph to serve.  The server becomes the graph's single
        writer: mutate it only through :meth:`mutate` while serving.
    window_s:
        Micro-batch gathering window.  After the first query of a batch
        arrives the dispatcher waits up to this long for more queries to
        coalesce with it (a mutation, a full batch, or the earliest pending
        deadline cuts the wait short — a query is never *held* past its own
        deadline just to gather batchmates).
    max_batch:
        Upper bound on queries drained into one micro-batch.
    max_pending:
        Bound on the submission queue (``None`` = unbounded, the previous
        behaviour).  With the queue at the bound, the ``admission`` policy
        decides the fate of the next enqueue-path query; cache hits and
        in-flight joins cost no queue slot and are always admitted.
    admission:
        Overload policy at the ``max_pending`` bound: ``"reject"`` (default)
        raises :class:`~repro.exceptions.ServerOverloadedError` to the
        submitter; ``"shed-oldest"`` evicts the oldest pending query of the
        lowest priority not exceeding the newcomer's (the victim's future —
        and its in-flight joiners — fail with ``shed=True``; a newcomer that
        out-prioritizes nothing is itself shed); ``"block"`` parks the
        submitting thread until the dispatcher frees a slot (or the server
        closes, which raises).
    cache_entries:
        LRU capacity of the version-keyed result cache.
    chunk_size:
        Maximum roots per ``(T, N, R)`` sweep chunk (the engine's usual
        column-block width).
    num_workers:
        When > 1, a coalesced group whose roots span several chunks fans the
        chunks over this many threads
        (:func:`repro.parallel.batch.fan_out_chunks`).
    sweep_mode:
        Kernel sweep implementation for every coalesced group: ``"fused"``
        (bit-packed direction-optimizing sweeps), ``"classic"`` (the
        byte-per-cell oracle loops), or ``None`` to follow the process-wide
        :func:`repro.engine.get_sweep_mode` default at execution time.
        Served results are bit-identical across modes.
    warm_start:
        Retain the ``(T, N)`` distance block behind every plain-forward
        frontier-family answer (one int32 block per distinct root, bounded
        by the cache capacity) so pure-insertion mutations can patch cached
        entries forward with the engine's decrease-only re-sweep instead of
        pruning them.  Patched answers are re-decoded through the exact
        coalesce readouts, hence bit-identical to recomputation.  Disable to
        trade the warm-restart hit rate for the block memory.
    sharded:
        Serve the frontier, zero-one, Tang and reach-count families through
        the pipelined time-shard driver instead of the monolithic kernels —
        results stay bit-identical, and a store-backed sharded graph serves
        out-of-core.  Pass a shard count (resolved once through
        :func:`repro.engine.get_sharded_driver`) or a prebuilt
        :class:`~repro.engine.sharded_sweep.ShardedSweepDriver` (e.g. over a
        memory-mapped store from :func:`repro.io.load_sharded`).  A sharded
        server is **read-only**: :meth:`mutate` raises
        :class:`~repro.exceptions.GraphError`, and a graph mutated behind
        the server's back fails each micro-batch with a staleness error
        instead of serving results from the outdated shard layout.  The
        spectral family keeps executing on the monolithic kernel.
    """

    def __init__(
        self,
        graph: BaseEvolvingGraph,
        *,
        window_s: float = 0.002,
        max_batch: int = 1024,
        max_pending: int | None = None,
        admission: str = "reject",
        cache_entries: int = 1024,
        chunk_size: int = 128,
        num_workers: int = 1,
        sweep_mode: str | None = None,
        warm_start: bool = True,
        sharded=None,
    ) -> None:
        if window_s < 0:
            raise GraphError(f"window_s must be >= 0, got {window_s}")
        if max_batch < 1:
            raise GraphError(f"max_batch must be at least 1, got {max_batch}")
        if max_pending is not None and max_pending < 1:
            raise GraphError(
                f"max_pending must be at least 1 or None, got {max_pending}"
            )
        if admission not in ADMISSION_POLICIES:
            raise GraphError(
                f"unsupported admission policy {admission!r}; "
                f"expected one of {ADMISSION_POLICIES}"
            )
        if chunk_size < 1:
            raise GraphError(f"chunk_size must be at least 1, got {chunk_size}")
        if sweep_mode is not None:
            resolve_sweep_mode(sweep_mode)  # validate eagerly, resolve at sweep time
        self._sweep_mode = sweep_mode
        self._graph = graph
        if isinstance(sharded, int):
            from repro.engine import get_sharded_driver

            sharded = get_sharded_driver(graph, sharded, chunk_size=chunk_size)
        self._sharded_driver = sharded
        if sharded is not None:
            sharded.require_current(graph)
        self._window = float(window_s)
        self._max_batch = int(max_batch)
        self._max_pending = None if max_pending is None else int(max_pending)
        self._admission = admission
        self._chunk_size = int(chunk_size)
        self._num_workers = max(1, int(num_workers))
        # warm-start blocks only exist on the monolithic forward path
        self._warm_start = bool(warm_start) and sharded is None
        self.stats = ServingStats()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._space = threading.Condition(self._lock)  # "block" admission waits
        self._cache = _VersionedLRU(cache_entries)
        self._pending: list[_Ticket] = []
        self._depth_peak = 0  # queue high-water since the last drain
        self._inflight: dict[tuple, list[_Waiter]] = {}
        self._mutations: list[tuple[list, list, Future]] = []
        self._executing = False
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._serve_loop, name="repro-query-server", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------ #
    # client API                                                          #
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> BaseEvolvingGraph:
        """The served graph (mutate only through :meth:`mutate`)."""
        return self._graph

    @property
    def cache_size(self) -> int:
        """Current number of cached results (bounded by ``cache_entries``)."""
        with self._lock:
            return len(self._cache)

    def stats_snapshot(self) -> dict:
        """A consistent plain-dict copy of :attr:`stats`, taken under the lock."""
        with self._lock:
            return self.stats.snapshot()

    def submit(
        self,
        query: Query | Submission,
        *,
        deadline_s: float | None = None,
        priority: int = 0,
    ) -> Future:
        """Enqueue one query; the returned future resolves to its result.

        Accepts a bare :class:`~repro.algorithms.queries.Query` (optionally
        with the ``deadline_s``/``priority`` keywords) or a prebuilt
        :class:`~repro.algorithms.queries.Submission`.  Cache hits resolve
        immediately; in-flight duplicates attach to the pending computation;
        everything else must win a queue slot under the admission policy and
        joins the next micro-batch.  A query whose (relative) ``deadline_s``
        budget is already zero at admission expires immediately — it never
        sweeps, by contract.  Under ``admission="reject"`` a full queue
        raises :class:`~repro.exceptions.ServerOverloadedError` here; every
        other failure mode is delivered through the future.
        """
        if isinstance(query, Submission):
            if deadline_s is not None or priority != 0:
                raise GraphError(
                    "pass deadline_s/priority either inside the Submission or "
                    "as submit keywords, not both"
                )
            submission = query
        elif isinstance(query, Query):
            submission = Submission(query, deadline_s=deadline_s, priority=priority)
        else:
            raise GraphError(
                f"submit expects a Query descriptor, got {type(query).__name__}"
            )
        query = submission.query
        key = submission.cache_key()
        future: Future = Future()
        now = time.monotonic()
        deadline = None if submission.deadline_s is None else now + submission.deadline_s
        failure: Exception | None = None
        value = None
        resolve = False
        with self._lock:
            if self._closed:
                raise GraphError("QueryServer is closed")
            self.stats.submitted += 1
            if deadline is not None and deadline <= now:
                # zero-budget admission: expired before any serving work —
                # by contract it must never sweep, so it never enqueues
                self.stats.admitted += 1
                self.stats.expired_before_sweep += 1
                self.stats.failed += 1
                failure = DeadlineExceededError(submission.deadline_s, swept=False)
            else:
                value, hit = self._cache.get(self._graph.mutation_version, key)
                if hit:
                    self.stats.admitted += 1
                    self.stats.cache_hits += 1
                    self.stats.served += 1
                    resolve = True
                else:
                    waiters = self._inflight.get(key)
                    if waiters is not None:
                        waiters.append(
                            _Waiter(future, deadline, submission.deadline_s, now)
                        )
                        self.stats.admitted += 1
                        self.stats.inflight_joins += 1
                        self.stats.coalesced_queries += 1
                        return future
                    shed_failures = self._admit(submission, future)
                    if shed_failures is None:
                        return future  # the newcomer itself was shed
                    self.stats.admitted += 1
                    self.stats.cache_misses += 1
                    self._inflight[key] = []
                    ticket = _Ticket(
                        future,
                        deadline,
                        submission.deadline_s,
                        now,
                        query=query,
                        key=key,
                        priority=submission.priority,
                    )
                    self._pending.append(ticket)
                    depth = len(self._pending)
                    if depth > self._depth_peak:
                        self._depth_peak = depth
                    if depth > self.stats.queue_depth_high_water:
                        self.stats.queue_depth_high_water = depth
                    self._wake.notify()
        if failure is not None:
            future.set_exception(failure)
            return future
        if resolve:
            future.set_result(value)
            return future
        # shed-oldest evictions: fail the victims outside the lock
        for victim_future, exc in shed_failures:
            victim_future.set_exception(exc)
        return future

    def _admit(self, submission: Submission, future: Future):
        """Win a queue slot under the admission policy (caller holds the lock).

        Returns the list of ``(future, exception)`` shed-victim failures to
        deliver outside the lock (usually empty), or ``None`` when the
        newcomer itself was shed (its future already carries the error to
        set; the caller returns it without enqueueing).  Raises
        :class:`ServerOverloadedError` under ``"reject"`` and
        :class:`GraphError` when a ``"block"`` wait ends in :meth:`close`.
        """
        if self._max_pending is None or len(self._pending) < self._max_pending:
            return []
        depth = len(self._pending)
        if self._admission == "reject":
            self.stats.rejected += 1
            raise ServerOverloadedError(depth, self._max_pending)
        if self._admission == "block":
            while len(self._pending) >= self._max_pending and not self._closed:
                self._space.wait()
            if self._closed:
                raise GraphError("QueryServer is closed")
            return []
        # shed-oldest: evict the oldest pending query among the lowest
        # priority not exceeding the newcomer's; an out-prioritized
        # newcomer is its own victim
        victim = None
        for ticket in self._pending:
            if ticket.priority > submission.priority:
                continue
            if victim is None or (ticket.priority, ticket.submitted) < (
                victim.priority,
                victim.submitted,
            ):
                victim = ticket
        if victim is None:
            self.stats.shed += 1
            self.stats.failed += 1
            future.set_exception(
                ServerOverloadedError(depth, self._max_pending, shed=True)
            )
            return None
        self._pending.remove(victim)
        waiters = self._inflight.pop(victim.key, [])
        exc = ServerOverloadedError(depth, self._max_pending, shed=True)
        failures = [(victim.future, exc)]
        failures.extend((w.future, exc) for w in waiters)
        self.stats.shed += len(failures)
        self.stats.failed += len(failures)
        return failures

    def query(
        self,
        query: Query | Submission,
        *,
        timeout: float | None = 30.0,
        deadline_s: float | None = None,
        priority: int = 0,
    ):
        """Submit and wait: the blocking convenience form of :meth:`submit`."""
        return self.submit(query, deadline_s=deadline_s, priority=priority).result(
            timeout=timeout
        )

    def query_many(
        self, queries: Iterable[Query | Submission], *, timeout: float | None = 60.0
    ) -> list:
        """Submit a burst of queries and gather their results in order."""
        futures = [self.submit(q) for q in queries]
        return [f.result(timeout=timeout) for f in futures]

    def mutate(
        self,
        edges: Sequence[TemporalEdgeTuple],
        *,
        removals: Sequence[TemporalEdgeTuple] = (),
    ) -> Future:
        """Enqueue an edge batch for the single writer.

        Applied between micro-batches: ``removals`` are removed, ``edges``
        added, the shared artifact is delta-recompiled, and the result cache
        is reconciled — a pure-insertion batch (no ``removals``, confirmed by
        the graph's insertion journal) *patches* warm frontier entries
        forward to the new version with the decrease-only re-sweep; anything
        else, and every entry without (still-valid) warm state, is
        invalidated.  The future resolves to the graph's new
        ``mutation_version``.
        """
        if self._sharded_driver is not None:
            raise GraphError(
                "a sharded QueryServer is read-only: its shard layout (and "
                "any on-disk store behind it) is fixed at one mutation "
                "version; serve mutations from a monolithic server instead"
            )
        batch = [tuple(e) for e in edges]
        dropped = [tuple(e) for e in removals]
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise GraphError("QueryServer is closed")
            self._mutations.append((batch, dropped, future))
            self._wake.notify()
        return future

    def join(self, *, timeout: float | None = 60.0) -> None:
        """Block until every enqueued query and mutation has been served."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._pending or self._mutations or self._executing:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError("QueryServer.join timed out")
                self._idle.wait(remaining)

    def close(self, *, timeout: float | None = 60.0) -> None:
        """Serve everything already enqueued, then stop the dispatcher.

        Submitters parked by the ``"block"`` admission policy are woken and
        raise :class:`~repro.exceptions.GraphError` instead of waiting on a
        server that will never drain for them.
        """
        with self._lock:
            self._closed = True
            self._wake.notify_all()
            self._space.notify_all()
        self._dispatcher.join(timeout=timeout)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # dispatcher                                                          #
    # ------------------------------------------------------------------ #

    def _serve_loop(self) -> None:
        while True:
            with self._lock:
                while not (self._pending or self._mutations or self._closed):
                    self._wake.wait()
                if self._closed and not self._pending and not self._mutations:
                    return
                # micro-batch window: let a burst accumulate before sweeping
                # (mutations, full batches and the earliest pending deadline
                # cut the wait short — deadline headroom is never spent on
                # waiting for batchmates)
                if self._window > 0 and self._pending and not self._mutations:
                    cut = time.monotonic() + self._window
                    while (
                        len(self._pending) < self._max_batch
                        and not self._mutations
                        and not self._closed
                    ):
                        wait_until = cut
                        for ticket in self._pending:
                            if ticket.deadline is not None:
                                wait_until = min(wait_until, ticket.deadline)
                        remaining = wait_until - time.monotonic()
                        if remaining <= 0:
                            break
                        self._wake.wait(remaining)
                mutations, self._mutations = self._mutations, []
                tickets = self._pending[: self._max_batch]
                del self._pending[: len(tickets)]
                if tickets:
                    depths = self.stats.batch_queue_depths
                    depths.append(self._depth_peak)
                    if len(depths) > _DEPTH_SAMPLES:
                        del depths[: len(depths) - _DEPTH_SAMPLES]
                    self._depth_peak = len(self._pending)
                    self._space.notify_all()  # "block" admissions may proceed
                self._executing = True
            drained_at = time.monotonic()
            try:
                for batch, dropped, future in mutations:
                    self._apply_mutation(batch, dropped, future)
                if tickets:
                    self._execute_micro_batch(tickets, drained_at)
            finally:
                with self._lock:
                    self._executing = False
                    self._idle.notify_all()

    def _apply_mutation(
        self,
        batch: list[TemporalEdgeTuple],
        removals: list[TemporalEdgeTuple],
        future: Future,
    ) -> None:
        """Single-writer admission of one streamed edge batch."""
        from repro.engine import get_compiled

        warm_carried: list | None = None
        removed: list[TemporalEdgeTuple] = []
        try:
            before = self._graph.mutation_version
            # phase 1 — removals: capture the pre-removal activeness (the
            # mask every warm block was computed under), mutate, then fold
            # the removals into the warm blocks with the increase-aware
            # shrink against the mid-batch artifact
            prev_active = None
            if self._warm_start and removals:
                prev_active = get_compiled(self._graph).active_mask
            for u, v, t in removals:
                if self._graph.remove_edge(u, v, t):
                    removed.append((u, v, t))
            mid = self._graph.mutation_version
            if self._warm_start and removed:
                try:
                    warm_carried = self._shrink_warm_entries(
                        before, removed, prev_active
                    )
                except Exception:
                    # a failed shrink must never wedge the writer: entries
                    # stay keyed at the old version, so the prune below
                    # restores the exact invalidation semantics
                    warm_carried = None
            # phase 2 — insertions, then refresh the artifact through the
            # delta path so the next micro-batch pays nothing; snapshots
            # the batch did not touch are shared with the previous artifact
            if batch:
                self._graph.add_edges_from(batch)
            get_compiled(self._graph)
            version = self._graph.mutation_version
        except Exception as exc:
            future.set_exception(exc)
            return
        patched = 0
        if self._warm_start and version != before:
            try:
                if removed:
                    patched = self._finish_warm_patch(
                        before, mid, version, warm_carried or []
                    )
                else:
                    insertions = self._graph.edge_insertions_since(before)
                    if insertions is not None:
                        patched = self._patch_warm_entries(
                            before, version, insertions
                        )
            except Exception:
                # a failed patch must never wedge the writer: the prune
                # below restores the exact invalidation semantics
                patched = 0
        with self._lock:
            self.stats.mutations += 1
            self.stats.edges_streamed += len(batch) + len(removals)
            self.stats.entries_patched += patched
            self.stats.entries_invalidated += self._cache.prune_stale(version)
        future.set_result(version)

    def _patch_warm_entries(
        self, before: int, version: int, insertions: list[TemporalEdgeTuple]
    ) -> int:
        """Carry warm cache entries across a pure-insertion mutation.

        The retained ``(T, N)`` distance blocks are folded forward in one
        grouped decrease-only re-sweep
        (:meth:`~repro.engine.frontier.FrontierKernel.patch_distance_blocks`
        stacks them into a single ``(T, N, R)`` relaxation, and blocks
        shared between entries with equal roots are deduplicated by
        identity), then every owning entry is re-decoded through the exact
        coalesce readouts and rekeyed to the new version — so a later cache
        hit serves a value bit-identical to recomputation.  Entries whose
        artifact axes changed (the insertion introduced a node or timestamp)
        are left behind for the pruning pass.  Returns the number of entries
        carried forward.
        """
        from repro.engine import get_compiled, get_kernel

        compiled = get_compiled(self._graph)
        kernel = get_kernel(self._graph)
        with self._lock:
            entries = self._cache.warm_entries(before)
        if not entries:
            return 0
        axes_ok: dict[int, bool] = {}
        block_ids: set[int] = set()
        blocks: list = []
        pins: list = []
        carried = []
        for key, entry in entries:
            warm = entry.warm
            surface = warm.surface
            ok = axes_ok.get(id(surface))
            if ok is None:
                ok = surface is compiled or (
                    surface.num_nodes == compiled.num_nodes
                    and surface.num_snapshots == compiled.num_snapshots
                    and list(surface.node_labels) == list(compiled.node_labels)
                    and tuple(surface.times) == tuple(compiled.times)
                )
                axes_ok[id(surface)] = ok
            if not ok:
                continue
            slot = compiled.slot(*warm.root)
            if slot is None:  # pragma: no cover - axes match implies a slot
                continue
            if id(warm.block) not in block_ids:
                block_ids.add(id(warm.block))
                blocks.append(warm.block)
                pins.append(slot)
            carried.append((key, warm))
        if not carried:
            return 0
        kernel.patch_distance_blocks(
            blocks, insertions, pinned=pins, sweep_mode=self._sweep_mode
        )
        moves = [
            (key, decode_warm_block(kernel, warm.query, warm.block), warm)
            for key, warm in carried
        ]
        for _key, warm in carried:
            warm.surface = compiled
        with self._lock:
            for key, value, warm in moves:
                self._cache.rekey(before, version, key, value, warm)
        return len(moves)

    def _shrink_warm_entries(
        self,
        before: int,
        removed: list[TemporalEdgeTuple],
        prev_active,
    ) -> list:
        """Phase 1 of a mixed-batch warm patch: fold the removals in.

        Runs against the *mid-batch* artifact (post-removal,
        pre-insertion).  Collects every warm entry keyed at ``before``
        whose axes survived and whose root is still active, shrinks their
        retained blocks with one grouped increase-aware re-sweep
        (:meth:`~repro.engine.frontier.FrontierKernel.shrink_distance_blocks`),
        and returns the carried ``(key, warm)`` pairs for
        :meth:`_finish_warm_patch`.  Entries are *not* rekeyed here — they
        stay at the old version until the whole two-phase patch succeeds,
        so any failure leaves them for the exact pruning pass.
        """
        from repro.engine import get_compiled, get_kernel

        compiled = get_compiled(self._graph)  # the mid-batch artifact
        kernel = get_kernel(self._graph)
        with self._lock:
            entries = self._cache.warm_entries(before)
        if not entries or prev_active is None:
            return []
        axes_ok: dict[int, bool] = {}
        block_ids: set[int] = set()
        blocks: list = []
        carried = []
        for key, entry in entries:
            warm = entry.warm
            surface = warm.surface
            ok = axes_ok.get(id(surface))
            if ok is None:
                ok = surface is compiled or (
                    surface.num_nodes == compiled.num_nodes
                    and surface.num_snapshots == compiled.num_snapshots
                    and list(surface.node_labels) == list(compiled.node_labels)
                    and tuple(surface.times) == tuple(compiled.times)
                )
                axes_ok[id(surface)] = ok
            if not ok:
                continue
            slot = compiled.slot(*warm.root)
            if slot is None or not compiled.active_mask[slot]:
                continue  # the removals deactivated this root: prune it
            if id(warm.block) not in block_ids:
                block_ids.add(id(warm.block))
                blocks.append(warm.block)
            carried.append((key, warm))
        if not carried:
            return []
        kernel.shrink_distance_blocks(
            blocks, removed, prev_active, sweep_mode=self._sweep_mode
        )
        for _key, warm in carried:
            warm.surface = compiled
        return carried

    def _finish_warm_patch(
        self, before: int, mid: int, version: int, carried: list
    ) -> int:
        """Phase 2 of a mixed-batch warm patch: fold the insertions, rekey.

        The ``mid → version`` journal window contains only the batch's
        insertions (the removals all landed before ``mid``), so the carried
        blocks — already exact at the mid-batch artifact — take the usual
        grouped decrease-only re-sweep against the final artifact, are
        re-decoded through the exact coalesce readouts, and only then
        rekeyed from ``before`` to ``version``.  Any entry that drops out
        along the way (axes changed, journal unavailable) simply stays at
        the old version for the pruning pass.
        """
        from repro.engine import get_compiled, get_kernel

        if not carried:
            return 0
        insertions = self._graph.edge_insertions_since(mid)
        if insertions is None:
            return 0
        compiled = get_compiled(self._graph)  # the final artifact
        kernel = get_kernel(self._graph)
        axes_ok: dict[int, bool] = {}
        block_ids: set[int] = set()
        blocks: list = []
        pins: list = []
        kept = []
        for key, warm in carried:
            surface = warm.surface
            ok = axes_ok.get(id(surface))
            if ok is None:
                ok = surface is compiled or (
                    surface.num_nodes == compiled.num_nodes
                    and surface.num_snapshots == compiled.num_snapshots
                    and list(surface.node_labels) == list(compiled.node_labels)
                    and tuple(surface.times) == tuple(compiled.times)
                )
                axes_ok[id(surface)] = ok
            if not ok:
                continue
            slot = compiled.slot(*warm.root)
            if slot is None:  # pragma: no cover - axes match implies a slot
                continue
            if id(warm.block) not in block_ids:
                block_ids.add(id(warm.block))
                blocks.append(warm.block)
                pins.append(slot)
            kept.append((key, warm))
        if not kept:
            return 0
        if insertions:
            kernel.patch_distance_blocks(
                blocks, insertions, pinned=pins, sweep_mode=self._sweep_mode
            )
        moves = [
            (key, decode_warm_block(kernel, warm.query, warm.block), warm)
            for key, warm in kept
        ]
        for _key, warm in kept:
            warm.surface = compiled
        with self._lock:
            for key, value, warm in moves:
                self._cache.rekey(before, version, key, value, warm)
        return len(moves)

    def _execute_micro_batch(self, tickets: list[_Ticket], drained_at: float) -> None:
        version = self._graph.mutation_version

        # deadline gate: fail every already-expired future *before* any
        # kernel work, and drop a query entirely when nothing attached to it
        # is still live (its sweep column would be pure waste)
        kept: list[_Ticket] = []
        to_fail: list[tuple[Future, Exception]] = []
        with self._lock:
            self.stats.micro_batches += 1
            for ticket in tickets:
                attached = [ticket, *self._inflight.get(ticket.key, [])]
                live: list[_Waiter] = []
                for waiter in attached:
                    self.stats.wait_latency.record(drained_at - waiter.submitted)
                    if waiter.expired(drained_at):
                        self.stats.expired_before_sweep += 1
                        self.stats.failed += 1
                        to_fail.append(
                            (
                                waiter.future,
                                DeadlineExceededError(waiter.budget, swept=False),
                            )
                        )
                    else:
                        live.append(waiter)
                if live:
                    ticket.live = live
                    # joiners arriving between this gate and the scatter
                    # accumulate in a fresh in-flight list
                    self._inflight[ticket.key] = []
                    kept.append(ticket)
                else:
                    # fully expired: late joiners must re-enqueue, not
                    # attach to a computation that will never run
                    self._inflight.pop(ticket.key, None)
        for expired_future, exc in to_fail:
            expired_future.set_exception(exc)
        if not kept:
            return

        # dedupe on canonical identity (defensive — the in-flight map makes
        # duplicate keys in one batch impossible), then group by sweep shape
        unique: "OrderedDict[tuple, _Ticket]" = OrderedDict()
        for ticket in kept:
            first = unique.get(ticket.key)
            if first is None:
                unique[ticket.key] = ticket
            else:  # pragma: no cover - unreachable by construction
                first.live.extend(ticket.live)
        groups: "OrderedDict[tuple, list[_Ticket]]" = OrderedDict()
        for ticket in unique.values():
            groups.setdefault(ticket.query.sweep_key(), []).append(ticket)

        for sweep_key, members in groups.items():
            queries = [ticket.query for ticket in members]
            try:
                if self._sharded_driver is not None:
                    # a read-only sharded server never mutates the graph
                    # itself, so a version drift means someone edited the
                    # graph behind the server's back — fail loudly rather
                    # than serve from the outdated shard layout
                    self._sharded_driver.require_current(self._graph)
                outcome = execute_group(
                    self._graph,
                    sweep_key,
                    queries,
                    chunk_size=self._chunk_size,
                    num_workers=self._num_workers,
                    sweep_mode=self._sweep_mode,
                    driver=self._sharded_driver,
                    warm_blocks=self._warm_start,
                )
                results, errors = outcome.results, outcome.errors
            except Exception as exc:  # whole-group failure
                outcome = None
                results = [None] * len(queries)
                errors = [exc] * len(queries)

            # a query is "coalesced" when its sweep was shared with at least
            # one other distinct query (in-flight joins are counted at submit)
            shared = len(queries) > 1
            scattered_at = time.monotonic()
            resolutions: list[tuple[Future, object, Exception | None]] = []
            with self._lock:
                if outcome is not None:
                    self.stats.sweeps += outcome.sweeps
                    self.stats.sweep_columns += outcome.columns
                for i, (ticket, result, error) in enumerate(
                    zip(members, results, errors, strict=True)
                ):
                    if error is None:
                        warm = None
                        if outcome is not None and outcome.warm is not None:
                            pair = outcome.warm[i]
                            if pair is not None:
                                warm = _WarmState(
                                    ticket.query, pair[0], pair[1], outcome.surface
                                )
                        self._cache.put(version, ticket.key, result, warm=warm)
                    waiters = ticket.live + self._inflight.pop(ticket.key, [])
                    for waiter in waiters:
                        self.stats.service_latency.record(scattered_at - drained_at)
                        if error is not None:
                            self.stats.failed += 1
                            resolutions.append((waiter.future, None, error))
                        elif waiter.expired(scattered_at):
                            self.stats.expired_after_sweep += 1
                            self.stats.failed += 1
                            resolutions.append(
                                (
                                    waiter.future,
                                    None,
                                    DeadlineExceededError(waiter.budget, swept=True),
                                )
                            )
                        else:
                            self.stats.served += 1
                            resolutions.append((waiter.future, result, None))
                    if shared:
                        self.stats.coalesced_queries += 1

            for waiter_future, result, error in resolutions:
                if error is None:
                    waiter_future.set_result(result)
                else:
                    waiter_future.set_exception(error)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<QueryServer graph_version={self._graph.mutation_version} "
            f"cache={len(self._cache)}/{self._cache.capacity} "
            f"served={self.stats.served}>"
        )
