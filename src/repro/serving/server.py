"""The thread-safe query server: micro-batching, coalescing and result caching.

:class:`QueryServer` turns the engine — a fast *library* of batched kernels —
into a fast *system*: many client threads submit
:class:`~repro.algorithms.queries.Query` descriptors concurrently, and the
server answers them with far less kernel work than one sweep per query:

1. **result cache** — a bounded LRU keyed on ``(mutation_version,
   cache_key)``.  ``mutation_version`` is exact (any in-place edit bumps
   it), so a hit is always safe to serve without touching a kernel; repeated
   and Zipf-skewed traffic is mostly absorbed here.
2. **in-flight dedup** — identical queries submitted while one of them is
   still being computed attach to the same pending computation.
3. **micro-batch coalescing** — queries that arrived within one batching
   window and share a :meth:`~repro.algorithms.queries.Query.sweep_key` are
   executed as *one* ``(T, N, R)`` block sweep (roots become columns of the
   CSR × dense-block products; see :mod:`repro.serving.coalesce`), and the
   per-query answers are scattered back to their futures.
4. **single-writer mutations** — :meth:`mutate` enqueues an edge batch that
   the dispatcher applies *between* micro-batches: the graph is edited, the
   compiled artifact is refreshed through the PR-4 delta path
   (:meth:`~repro.graph.compiled.CompiledTemporalGraph.recompile` — only
   touched snapshots rebuild), and every cache entry whose version no longer
   matches is invalidated.  Queries therefore always execute against a
   consistent ``(graph, artifact)`` pair.

Freshness contract: a query is answered at *some* mutation version at least
as new as the one current when it was submitted (the usual serving model);
:meth:`join` quiesces the server when a caller needs a fixed version.
Results may be shared between callers (cache hits hand out the same object)
— treat them as read-only.

Thread-safety: ``submit``/``query``/``mutate`` may be called from any number
of threads.  All kernel execution happens on the dispatcher thread (plus its
optional chunk fan-out pool), and the engine's dispatch cache is itself
lock-safe since this PR, so readers can also keep calling the plain
``repro.algorithms`` functions on the same graph between mutations.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field, fields
from typing import Iterable, Sequence

from repro.algorithms.queries import Query
from repro.engine.bitops import resolve_sweep_mode
from repro.exceptions import GraphError
from repro.graph.base import BaseEvolvingGraph, TemporalEdgeTuple
from repro.serving.coalesce import execute_group

__all__ = ["QueryServer", "ServingStats"]


@dataclass
class ServingStats:
    """Op-stats of one :class:`QueryServer` (the serving analogue of
    :class:`~repro.linalg.csr.OperationCounter`).

    ``sweeps``/``sweep_columns`` are what the coalescing tests assert on: a
    micro-batch of ``R`` same-shape queries must execute as one sweep of
    ``R`` columns, not ``R`` sweeps.  ``coalesced_queries`` counts queries
    that shared their sweep with at least one other query or rode an
    in-flight duplicate.
    """

    submitted: int = 0
    served: int = 0
    failed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    inflight_joins: int = 0
    micro_batches: int = 0
    sweeps: int = 0
    sweep_columns: int = 0
    coalesced_queries: int = 0
    mutations: int = 0
    edges_streamed: int = 0
    entries_invalidated: int = 0

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy (reports and assertions)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class _VersionedLRU:
    """Bounded LRU of ``(mutation_version, cache_key) -> result``.

    Not itself locked — the server serializes access under its own lock.
    ``get`` double-checks the version so a stale entry is never served even
    if pruning were to lag a mutation.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise GraphError(f"cache capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, version: int, key: tuple):
        full_key = (version, key)
        if full_key not in self._entries:
            return None, False
        self._entries.move_to_end(full_key)
        return self._entries[full_key], True

    def put(self, version: int, key: tuple, value) -> None:
        full_key = (version, key)
        self._entries[full_key] = value
        self._entries.move_to_end(full_key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def prune_stale(self, version: int) -> int:
        """Drop every entry whose version no longer matches; returns the count."""
        stale = [k for k in self._entries if k[0] != version]
        for k in stale:
            del self._entries[k]
        return len(stale)


class QueryServer:
    """Concurrent query-serving façade over one evolving graph.

    Parameters
    ----------
    graph:
        The evolving graph to serve.  The server becomes the graph's single
        writer: mutate it only through :meth:`mutate` while serving.
    window_s:
        Micro-batch gathering window.  After the first query of a batch
        arrives the dispatcher waits up to this long for more queries to
        coalesce with it (a mutation or a full batch cuts the wait short).
    max_batch:
        Upper bound on queries drained into one micro-batch.
    cache_entries:
        LRU capacity of the version-keyed result cache.
    chunk_size:
        Maximum roots per ``(T, N, R)`` sweep chunk (the engine's usual
        column-block width).
    num_workers:
        When > 1, a coalesced group whose roots span several chunks fans the
        chunks over this many threads
        (:func:`repro.parallel.batch.fan_out_chunks`).
    sweep_mode:
        Kernel sweep implementation for every coalesced group: ``"fused"``
        (bit-packed direction-optimizing sweeps), ``"classic"`` (the
        byte-per-cell oracle loops), or ``None`` to follow the process-wide
        :func:`repro.engine.get_sweep_mode` default at execution time.
        Served results are bit-identical across modes.
    sharded:
        Serve the frontier, zero-one, Tang and reach-count families through
        the pipelined time-shard driver instead of the monolithic kernels —
        results stay bit-identical, and a store-backed sharded graph serves
        out-of-core.  Pass a shard count (resolved once through
        :func:`repro.engine.get_sharded_driver`) or a prebuilt
        :class:`~repro.engine.sharded_sweep.ShardedSweepDriver` (e.g. over a
        memory-mapped store from :func:`repro.io.load_sharded`).  A sharded
        server is **read-only**: :meth:`mutate` raises
        :class:`~repro.exceptions.GraphError`, and a graph mutated behind
        the server's back fails each micro-batch with a staleness error
        instead of serving results from the outdated shard layout.  The
        spectral family keeps executing on the monolithic kernel.
    """

    def __init__(
        self,
        graph: BaseEvolvingGraph,
        *,
        window_s: float = 0.002,
        max_batch: int = 1024,
        cache_entries: int = 1024,
        chunk_size: int = 128,
        num_workers: int = 1,
        sweep_mode: str | None = None,
        sharded=None,
    ) -> None:
        if window_s < 0:
            raise GraphError(f"window_s must be >= 0, got {window_s}")
        if max_batch < 1:
            raise GraphError(f"max_batch must be at least 1, got {max_batch}")
        if chunk_size < 1:
            raise GraphError(f"chunk_size must be at least 1, got {chunk_size}")
        if sweep_mode is not None:
            resolve_sweep_mode(sweep_mode)  # validate eagerly, resolve at sweep time
        self._sweep_mode = sweep_mode
        self._graph = graph
        if isinstance(sharded, int):
            from repro.engine import get_sharded_driver

            sharded = get_sharded_driver(graph, sharded, chunk_size=chunk_size)
        self._sharded_driver = sharded
        if sharded is not None:
            sharded.require_current(graph)
        self._window = float(window_s)
        self._max_batch = int(max_batch)
        self._chunk_size = int(chunk_size)
        self._num_workers = max(1, int(num_workers))
        self.stats = ServingStats()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._cache = _VersionedLRU(cache_entries)
        self._pending: list[tuple[Query, Future]] = []
        self._inflight: dict[tuple, list[Future]] = {}
        self._mutations: list[tuple[list[TemporalEdgeTuple], Future]] = []
        self._executing = False
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._serve_loop, name="repro-query-server", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------ #
    # client API                                                          #
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> BaseEvolvingGraph:
        """The served graph (mutate only through :meth:`mutate`)."""
        return self._graph

    @property
    def cache_size(self) -> int:
        """Current number of cached results (bounded by ``cache_entries``)."""
        with self._lock:
            return len(self._cache)

    def submit(self, query: Query) -> Future:
        """Enqueue one query; the returned future resolves to its result.

        Cache hits resolve immediately; in-flight duplicates attach to the
        pending computation; everything else joins the next micro-batch.
        """
        if not isinstance(query, Query):
            raise GraphError(
                f"submit expects a Query descriptor, got {type(query).__name__}"
            )
        key = query.cache_key()
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise GraphError("QueryServer is closed")
            self.stats.submitted += 1
            value, hit = self._cache.get(self._graph.mutation_version, key)
            if hit:
                self.stats.cache_hits += 1
                self.stats.served += 1
            else:
                waiters = self._inflight.get(key)
                if waiters is not None:
                    waiters.append(future)
                    self.stats.inflight_joins += 1
                    self.stats.coalesced_queries += 1
                    return future
                self.stats.cache_misses += 1
                self._inflight[key] = []
                self._pending.append((query, future))
                self._wake.notify()
                return future
        future.set_result(value)
        return future

    def query(self, query: Query, *, timeout: float | None = 30.0):
        """Submit and wait: the blocking convenience form of :meth:`submit`."""
        return self.submit(query).result(timeout=timeout)

    def query_many(
        self, queries: Iterable[Query], *, timeout: float | None = 60.0
    ) -> list:
        """Submit a burst of queries and gather their results in order."""
        futures = [self.submit(q) for q in queries]
        return [f.result(timeout=timeout) for f in futures]

    def mutate(self, edges: Sequence[TemporalEdgeTuple]) -> Future:
        """Enqueue an edge batch for the single writer.

        Applied between micro-batches: ``graph.add_edges_from(edges)``, a
        delta recompile of the shared artifact, and invalidation of every
        version-mismatched cache entry.  The future resolves to the graph's
        new ``mutation_version``.
        """
        if self._sharded_driver is not None:
            raise GraphError(
                "a sharded QueryServer is read-only: its shard layout (and "
                "any on-disk store behind it) is fixed at one mutation "
                "version; serve mutations from a monolithic server instead"
            )
        batch = [tuple(e) for e in edges]
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise GraphError("QueryServer is closed")
            self._mutations.append((batch, future))
            self._wake.notify()
        return future

    def join(self, *, timeout: float | None = 60.0) -> None:
        """Block until every enqueued query and mutation has been served."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._pending or self._mutations or self._executing:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError("QueryServer.join timed out")
                self._idle.wait(remaining)

    def close(self, *, timeout: float | None = 60.0) -> None:
        """Serve everything already enqueued, then stop the dispatcher."""
        with self._lock:
            self._closed = True
            self._wake.notify_all()
        self._dispatcher.join(timeout=timeout)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # dispatcher                                                          #
    # ------------------------------------------------------------------ #

    def _serve_loop(self) -> None:
        while True:
            with self._lock:
                while not (self._pending or self._mutations or self._closed):
                    self._wake.wait()
                if self._closed and not self._pending and not self._mutations:
                    return
                # micro-batch window: let a burst accumulate before sweeping
                # (mutations and full batches cut the wait short)
                if self._window > 0 and self._pending and not self._mutations:
                    deadline = time.monotonic() + self._window
                    while (
                        len(self._pending) < self._max_batch
                        and not self._mutations
                        and not self._closed
                    ):
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._wake.wait(remaining)
                mutations, self._mutations = self._mutations, []
                tickets = self._pending[: self._max_batch]
                del self._pending[: len(tickets)]
                self._executing = True
            try:
                for batch, future in mutations:
                    self._apply_mutation(batch, future)
                if tickets:
                    self._execute_micro_batch(tickets)
            finally:
                with self._lock:
                    self._executing = False
                    self._idle.notify_all()

    def _apply_mutation(self, batch: list[TemporalEdgeTuple], future: Future) -> None:
        """Single-writer admission of one streamed edge batch."""
        from repro.engine import get_compiled

        try:
            self._graph.add_edges_from(batch)
            # refresh the artifact now through the delta path, so the next
            # micro-batch pays nothing; snapshots the batch did not touch
            # are shared with the previous artifact
            get_compiled(self._graph)
            version = self._graph.mutation_version
        except Exception as exc:
            future.set_exception(exc)
            return
        with self._lock:
            self.stats.mutations += 1
            self.stats.edges_streamed += len(batch)
            self.stats.entries_invalidated += self._cache.prune_stale(version)
        future.set_result(version)

    def _execute_micro_batch(self, tickets: list[tuple[Query, Future]]) -> None:
        version = self._graph.mutation_version
        # dedupe on canonical identity, then group by sweep shape
        unique: "OrderedDict[tuple, Query]" = OrderedDict()
        holders: dict[tuple, list[Future]] = {}
        for query, future in tickets:
            key = query.cache_key()
            unique.setdefault(key, query)
            holders.setdefault(key, []).append(future)
        groups: "OrderedDict[tuple, list[tuple[tuple, Query]]]" = OrderedDict()
        for key, query in unique.items():
            groups.setdefault(query.sweep_key(), []).append((key, query))

        with self._lock:
            self.stats.micro_batches += 1

        for sweep_key, members in groups.items():
            keys = [key for key, _ in members]
            queries = [query for _, query in members]
            try:
                if self._sharded_driver is not None:
                    # a read-only sharded server never mutates the graph
                    # itself, so a version drift means someone edited the
                    # graph behind the server's back — fail loudly rather
                    # than serve from the outdated shard layout
                    self._sharded_driver.require_current(self._graph)
                outcome = execute_group(
                    self._graph,
                    sweep_key,
                    queries,
                    chunk_size=self._chunk_size,
                    num_workers=self._num_workers,
                    sweep_mode=self._sweep_mode,
                    driver=self._sharded_driver,
                )
                results, errors = outcome.results, outcome.errors
            except Exception as exc:  # whole-group failure
                outcome = None
                results = [None] * len(queries)
                errors = [exc] * len(queries)

            # a query is "coalesced" when its sweep was shared with at least
            # one other distinct query (in-flight joins are counted at submit)
            shared = len(queries) > 1
            with self._lock:
                if outcome is not None:
                    self.stats.sweeps += outcome.sweeps
                    self.stats.sweep_columns += outcome.columns
                waiters = {key: self._inflight.pop(key, []) for key in keys}
                for key, result, error in zip(keys, results, errors):
                    count = len(holders[key]) + len(waiters[key])
                    if error is None:
                        self._cache.put(version, key, result)
                        self.stats.served += count
                    else:
                        self.stats.failed += count
                    if shared:
                        self.stats.coalesced_queries += 1

            for key, result, error in zip(keys, results, errors, strict=True):
                for future in holders[key] + waiters[key]:
                    if error is None:
                        future.set_result(result)
                    else:
                        future.set_exception(error)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<QueryServer graph_version={self._graph.mutation_version} "
            f"cache={len(self._cache)}/{self._cache.capacity} "
            f"served={self.stats.served}>"
        )
