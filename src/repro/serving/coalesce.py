"""Coalesced execution of query groups as shared ``(T, N, R)`` block sweeps.

The server (:class:`repro.serving.QueryServer`) groups the queries of one
micro-batch by :meth:`~repro.algorithms.queries.Query.sweep_key`; this module
executes each group with the *minimum* number of kernel sweeps:

* every **frontier-family** query (BFS, reachability probes,
  earliest-arrival, latest-departure) contributes its root as one column of
  a single batched distance sweep on the shared
  :class:`~repro.engine.frontier.FrontierKernel` — the per-query answers are
  then *decoded* from the common ``(T, N, R)`` distance block with exactly
  the readouts the direct functions use, so served results stay bit-identical
  to :func:`repro.core.bfs.evolving_bfs`,
  :func:`repro.algorithms.temporal_paths.earliest_arrival_times` and
  friends;
* **fewest-hops** queries pack their sources into one 0/1-semiring label
  sweep on the :class:`~repro.engine.labels.LabelKernel`;
* **Tang-distance** queries with equal ``(start_time, horizon)`` pack their
  source nodes into one :meth:`~repro.engine.labels.LabelKernel.tang_steps`
  sweep;
* **whole-graph** queries (top-k reach counts, spectral broadcast/receive
  centrality) are computed once per group and fanned out to every query in
  it.

Duplicate queries never reach this module — the server dedupes on
``cache_key`` first — so the ``R`` columns of a group sweep are all distinct
roots.  Results and per-query exceptions are returned positionally; the
server owns futures, caching and locking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.queries import (
    BFSQuery,
    EarliestArrivalQuery,
    LatestDepartureQuery,
    Query,
    ReachabilityQuery,
    rank_top_k,
)
from repro.exceptions import GraphError, InactiveNodeError
from repro.graph.base import BaseEvolvingGraph, TemporalNodeTuple

__all__ = ["GroupOutcome", "decode_warm_block", "execute_group"]


@dataclass
class GroupOutcome:
    """Result of one coalesced group execution.

    ``results[i]`` / ``errors[i]`` align with the input queries (exactly one
    of the pair is set per query; ``errors[i] is None`` on success).
    ``columns`` counts the distinct roots packed into the shared sweep
    (``1`` for whole-graph groups), ``sweeps`` the number of batched kernel
    executions (one per group unless the group was empty).

    When the caller requested warm-start state (``execute_group(...,
    warm_blocks=True)``) and the group ran the plain-forward monolithic
    frontier sweep, ``warm[i]`` is the ``(root, block)`` pair backing query
    ``i`` — ``block`` a contiguous writable ``(T, N)`` int32 distance copy of
    the root's sweep column, shared between queries with equal roots — and
    ``surface`` is the compiled artifact the sweep ran on (the axes a later
    patch must match).  Other families, backward/reversed sweeps and sharded
    executions have no decrease-only patch rule, so their ``warm`` stays
    ``None``-filled.
    """

    results: list = field(default_factory=list)
    errors: list = field(default_factory=list)
    columns: int = 0
    sweeps: int = 0
    warm: list | None = None
    surface: object | None = None


def execute_group(
    graph: BaseEvolvingGraph,
    sweep_key: tuple,
    queries: list[Query],
    *,
    chunk_size: int = 128,
    num_workers: int = 1,
    sweep_mode: str | None = None,
    driver=None,
    warm_blocks: bool = False,
) -> GroupOutcome:
    """Answer every query in one sweep-shape group with shared kernel work.

    ``sweep_mode`` selects the kernel sweep implementation (``"fused"`` /
    ``"classic"``; ``None`` follows the process-wide default) and is threaded
    to every batched kernel call below — results are bit-identical either
    way, so served answers never depend on the mode.

    ``driver`` (a :class:`~repro.engine.sharded_sweep.ShardedSweepDriver`)
    reroutes the frontier, zero-one, Tang and reach-count families through
    the pipelined time-shard sweeps — served results stay bit-identical; the
    driver's backend supplies the parallelism, so the ``num_workers`` thread
    fan-out is bypassed.  The spectral family has no sharded formulation
    (its resolvent chains are global in time) and always executes on the
    monolithic kernel.

    ``warm_blocks`` asks the plain-forward monolithic frontier path to also
    return the per-root distance blocks (``GroupOutcome.warm``) so the caller
    can keep them for decrease-only re-sweeps across pure-insertion
    mutations; every other path ignores the flag.
    """
    family = sweep_key[0]
    if family == "frontier":
        return _frontier_group(
            graph,
            sweep_key,
            queries,
            chunk_size,
            num_workers,
            sweep_mode,
            driver,
            warm_blocks,
        )
    if family == "zero_one":
        return _zero_one_group(
            graph, sweep_key, queries, chunk_size, num_workers, sweep_mode, driver
        )
    if family == "tang":
        return _tang_group(graph, sweep_key, queries, chunk_size, sweep_mode, driver)
    if family == "reach_counts":
        return _reach_counts_group(
            graph, sweep_key, queries, chunk_size, sweep_mode, driver
        )
    if family == "spectral":
        return _spectral_group(graph, sweep_key, queries)
    raise GraphError(f"unknown sweep family {family!r}")


def _query_root(query: Query) -> TemporalNodeTuple:
    if isinstance(query, (BFSQuery, ReachabilityQuery)):
        return query.root
    if isinstance(query, EarliestArrivalQuery):
        return query.source
    if isinstance(query, LatestDepartureQuery):
        return query.target
    raise GraphError(f"{type(query).__name__} is not a frontier-family query")


def _chunked_blocks(run_chunk, roots, chunk_size, num_workers):
    """``(chunk, block)`` pairs for ``roots``, optionally fanned over threads.

    Reuses the thread fan-out of :func:`repro.parallel.batch.fan_out_chunks`
    — the same machinery ``batch_bfs(backend="vectorized")`` spreads its root
    chunks with — so a large coalesced group overlaps its SpMM chunks
    wherever SciPy releases the GIL.
    """
    from repro.parallel.batch import fan_out_chunks

    parts = fan_out_chunks(
        run_chunk, roots, chunk_size=chunk_size, num_workers=num_workers
    )
    for part in parts:
        yield from part


def _decode_frontier(query: Query, dist: np.ndarray, col: int, *, surface, bfs_decode):
    """Decode one frontier-family query from its ``(T, N, R)`` sweep column.

    The single decode used both for fresh coalesced sweeps and for
    warm-start blocks patched across mutations
    (:func:`decode_warm_block`) — sharing it is what makes patched answers
    bit-identical to fresh ones by construction.  ``bfs_decode`` is the
    sweeper's ``{(node, time): distance}`` readout (kernel or shard driver).
    """
    if isinstance(query, BFSQuery):
        return bfs_decode(dist, col)
    if isinstance(query, ReachabilityQuery):
        slot = surface.slot(*query.target)
        if slot is None or dist[slot[0], slot[1], col] < 0:
            return None
        return int(dist[slot[0], slot[1], col])
    labels = surface.node_labels
    times = surface.times
    reached = dist[:, :, col] >= 0
    hit = reached.any(axis=0)
    if isinstance(query, EarliestArrivalQuery):
        # the running-minimum readout of LabelKernel.earliest_arrivals
        first = reached.argmax(axis=0)
        return {labels[vi]: times[first[vi]] for vi in np.nonzero(hit)[0].tolist()}
    # LatestDepartureQuery: the mirrored running maximum
    last = surface.num_snapshots - 1 - reached[::-1].argmax(axis=0)
    return {labels[vi]: times[last[vi]] for vi in np.nonzero(hit)[0].tolist()}


def decode_warm_block(kernel, query: Query, block: np.ndarray):
    """Re-decode a warm-start ``(T, N)`` distance block into ``query``'s answer.

    Used by the server after :meth:`FrontierKernel.patch_distance_block`
    folded a pure-insertion batch into ``block``: wraps the block as a
    one-column sweep and runs the exact same decode as a fresh coalesced
    sweep, so patched answers cannot drift from recomputed ones.
    """
    dist = block[:, :, None]
    return _decode_frontier(
        query,
        dist,
        0,
        surface=kernel.compiled,
        bfs_decode=lambda d, c: kernel._reached_dict(d, c),
    )


def _frontier_group(
    graph: BaseEvolvingGraph,
    sweep_key: tuple,
    queries: list[Query],
    chunk_size: int,
    num_workers: int,
    sweep_mode: str | None,
    driver=None,
    warm_blocks: bool = False,
) -> GroupOutcome:
    """BFS / reachability / earliest-arrival / latest-departure, one sweep."""
    _, direction, reverse_edges = sweep_key
    if driver is not None:
        surface = driver.sharded
        decode = driver.reached_dict
        sweeper = driver
    else:
        from repro.engine import get_kernel

        kernel = get_kernel(graph)
        surface = kernel.compiled
        decode = lambda dist, col: kernel._reached_dict(dist, col)  # noqa: E731
        sweeper = kernel
    outcome = GroupOutcome(results=[None] * len(queries), errors=[None] * len(queries))

    # roots become sweep columns; inactive roots never enter the sweep —
    # BFS/reachability mirror the functions' InactiveNodeError, the
    # earliest/latest readouts mirror their documented empty-dict result
    roots: list[TemporalNodeTuple] = []
    seen: dict[TemporalNodeTuple, int] = {}
    pending: list[int] = []
    for i, query in enumerate(queries):
        root = _query_root(query)
        if not surface.is_active(*root):
            if isinstance(query, (BFSQuery, ReachabilityQuery)):
                outcome.errors[i] = InactiveNodeError(*root)
            else:
                outcome.results[i] = {}
            continue
        if root not in seen:
            seen[root] = len(roots)
            roots.append(root)
        pending.append(i)
    if not roots:
        return outcome

    def run_chunk(chunk_roots):
        return list(
            sweeper.distance_blocks(
                chunk_roots,
                direction=direction,
                reverse_edges=reverse_edges,
                chunk_size=chunk_size,
                sweep_mode=sweep_mode,
            )
        )

    if driver is not None:
        # the driver's shard backend supplies the parallelism (and, for the
        # thread/process backends, pipelines the chunks through the shards)
        block_iter = run_chunk(roots)
    else:
        block_iter = _chunked_blocks(run_chunk, roots, chunk_size, num_workers)
    blocks: dict[TemporalNodeTuple, tuple[np.ndarray, int]] = {}
    for chunk, dist in block_iter:
        for col, root in enumerate(chunk):
            blocks[root] = (dist, col)
    outcome.columns = len(roots)
    outcome.sweeps = 1

    for i in pending:
        query = queries[i]
        dist, col = blocks[_query_root(query)]
        outcome.results[i] = _decode_frontier(
            query, dist, col, surface=surface, bfs_decode=decode
        )

    # warm-start state only exists for the plain-forward monolithic sweep —
    # the only shape patch_distance_block's decrease-only rule applies to
    if warm_blocks and driver is None and direction == "forward" and not reverse_edges:
        copies = {
            root: np.ascontiguousarray(dist[:, :, col])
            for root, (dist, col) in blocks.items()
        }
        outcome.warm = [None] * len(queries)
        for i in pending:
            root = _query_root(queries[i])
            outcome.warm[i] = (root, copies[root])
        outcome.surface = surface
    return outcome


def _zero_one_group(
    graph: BaseEvolvingGraph,
    sweep_key: tuple,
    queries: list[Query],
    chunk_size: int,
    num_workers: int,
    sweep_mode: str | None,
    driver=None,
) -> GroupOutcome:
    """Fewest-spatial-hops sources packed into one 0/1-semiring sweep."""
    _, spatial_cost, causal_cost = sweep_key
    if driver is not None:
        surface = driver.sharded
        sweeper = driver
    else:
        from repro.engine import get_label_kernel

        sweeper = get_label_kernel(graph)
        surface = sweeper.compiled
    outcome = GroupOutcome(results=[None] * len(queries), errors=[None] * len(queries))

    roots: list[TemporalNodeTuple] = []
    seen: set[TemporalNodeTuple] = set()
    pending: list[int] = []
    for i, query in enumerate(queries):
        source = query.source
        if not surface.is_active(*source):
            outcome.results[i] = {}  # fewest_spatial_hops_from's inactive answer
            continue
        if source not in seen:
            seen.add(source)
            roots.append(source)
        pending.append(i)
    if not roots:
        return outcome

    def run_chunk(chunk_roots):
        return list(
            sweeper.zero_one_labels(
                chunk_roots,
                spatial_cost=spatial_cost,
                causal_cost=causal_cost,
                chunk_size=chunk_size,
                sweep_mode=sweep_mode,
            )
        )

    if driver is not None:
        block_iter = run_chunk(roots)
    else:
        block_iter = _chunked_blocks(run_chunk, roots, chunk_size, num_workers)
    labels = surface.node_labels
    times = surface.times
    decoded: dict[TemporalNodeTuple, dict] = {}
    for chunk, block in block_iter:
        for col, root in enumerate(chunk):
            t_arr, v_arr = np.nonzero(block[:, :, col] >= 0)
            hops = block[t_arr, v_arr, col]
            decoded[root] = {
                (labels[vi], times[ti]): int(h)
                for ti, vi, h in zip(t_arr.tolist(), v_arr.tolist(), hops.tolist())
            }
    outcome.columns = len(roots)
    outcome.sweeps = 1
    for i in pending:
        outcome.results[i] = decoded[queries[i].source]
    return outcome


def _tang_group(
    graph: BaseEvolvingGraph,
    sweep_key: tuple,
    queries: list[Query],
    chunk_size: int,
    sweep_mode: str | None,
    driver=None,
) -> GroupOutcome:
    """Tang snapshot-count sources packed into one batched time sweep."""
    _, start_time, horizon = sweep_key
    outcome = GroupOutcome(results=[None] * len(queries), errors=[None] * len(queries))
    times = list(graph.timestamps)
    # the edge semantics of temporal_distances_tang_from, replicated exactly
    if start_time is not None and start_time not in times:
        outcome.results = [{} for _ in queries]
        return outcome
    if not times:
        outcome.results = [{query.source_node: 0} for query in queries]
        return outcome
    start_index = 0 if start_time is None else times.index(start_time)

    sources = []
    seen = set()
    for query in queries:
        if query.source_node not in seen:
            seen.add(query.source_node)
            sources.append(query.source_node)
    if driver is not None:
        sweeper = driver
    else:
        from repro.engine import get_label_kernel

        sweeper = get_label_kernel(graph)
    steps = sweeper.tang_steps(
        sources,
        horizon=horizon,
        start_index=start_index,
        chunk_size=chunk_size,
        sweep_mode=sweep_mode,
    )
    outcome.columns = len(sources)
    outcome.sweeps = 1
    for i, query in enumerate(queries):
        result = steps[query.source_node]
        result.setdefault(query.source_node, 0)
        outcome.results[i] = result
    return outcome


def _reach_counts_group(
    graph: BaseEvolvingGraph,
    sweep_key: tuple,
    queries: list[Query],
    chunk_size: int,
    sweep_mode: str | None,
    driver=None,
) -> GroupOutcome:
    """One whole-graph reach-count sweep serves every top-k ranking in the group."""
    _, direction = sweep_key
    outcome = GroupOutcome(results=[None] * len(queries), errors=[None] * len(queries))
    roots = graph.active_temporal_nodes()
    counts: dict[TemporalNodeTuple, int] = {}
    if roots:
        if driver is not None:
            sweeper = driver
        else:
            from repro.engine import get_kernel

            sweeper = get_kernel(graph)
        counts = sweeper.identity_reach_counts(
            roots, direction=direction, chunk_size=chunk_size, sweep_mode=sweep_mode
        )
        outcome.columns = len(roots)
        outcome.sweeps = 1
    for i, query in enumerate(queries):
        outcome.results[i] = rank_top_k(counts, query.k)
    return outcome


def _spectral_group(
    graph: BaseEvolvingGraph,
    sweep_key: tuple,
    queries: list[Query],
) -> GroupOutcome:
    """Broadcast/receive centrality; the resolvent LU cache is shared per alpha."""
    from repro.algorithms.dynamic_walks import broadcast_centrality, receive_centrality

    _, kind, alpha = sweep_key
    fn = broadcast_centrality if kind == "broadcast" else receive_centrality
    outcome = GroupOutcome(results=[None] * len(queries), errors=[None] * len(queries))
    try:
        value = fn(graph, alpha, backend="vectorized")
    except Exception as exc:  # alpha outside the convergence region, etc.
        outcome.errors = [exc] * len(queries)
        return outcome
    outcome.columns = 1
    outcome.sweeps = 1
    outcome.results = [value] * len(queries)
    return outcome
